"""Fan-out executor: run a list of cells, memoized and optionally parallel.

``run_cells`` (or the thin :class:`ExperimentEngine` wrapper the figure
runners use) takes the declared cell list of one experiment grid and

1. pre-warms the on-disk trace cache *in parallel* through
   :func:`repro.experiments.warm.warm_traces` — every missing workload and
   profiling trace is generated concurrently on the same worker budget, and
   content fingerprints are computed inside the workers; the parent never
   loads a trace, and cell workers are handed npz *paths* (re-opened
   locally and memoized per process), never pickled address arrays;
2. answers as many cells as possible from the content-addressed
   :class:`~repro.experiments.engine.cache.ResultCache`;
3. executes the remaining cells either in-process (``jobs=1``, the
   deterministic sequential fallback) or on a ``ProcessPoolExecutor``
   (``jobs>1``; ``jobs=0`` means ``os.cpu_count()``); then
4. returns ``{(workload, label): SimulationResult}`` **in declared cell
   order** plus an :class:`EngineStats` with cache-hit/miss counters and
   per-cell wall times.

Because every cell is a pure function of its spec and aggregation order is
fixed by the caller's declaration order, parallel runs are bit-identical to
sequential ones — a property locked down by
``tests/experiments/test_parallel_engine.py``.

Worker failures are re-raised in the parent as
:class:`~repro.experiments.engine.cells.CellExecutionError` naming the
failing (workload, scheme) cell, with the original exception chained.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ...core.simulator import SimulationResult
from ..config import PaperConfig
from .cache import ResultCache, cell_key
from .cells import CellExecutionError, SimCell, timed_execute_cell

__all__ = ["EngineStats", "ExperimentEngine", "effective_jobs", "run_cells"]


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: ``None``/``0``/negative → all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class EngineStats:
    """Counters for one engine invocation (exposed on ``ExperimentResult``)."""

    jobs: int = 1
    cells_total: int = 0
    cache_hits: int = 0
    #: Cells actually simulated this run (== cache misses).
    cache_misses: int = 0
    wall_seconds: float = 0.0
    #: Per-cell simulation wall time, keyed ``"workload/label"``.
    cell_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def simulated(self) -> int:
        return self.cache_misses

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate another invocation (figures sharing one grid)."""
        self.cells_total += other.cells_total
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_seconds += other.wall_seconds
        self.cell_seconds.update(other.cell_seconds)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": round(self.wall_seconds, 6),
            "cell_seconds": {k: round(v, 6) for k, v in self.cell_seconds.items()},
        }

    def summary(self) -> str:
        return (
            f"{self.cells_total} cells: {self.cache_hits} cached, "
            f"{self.cache_misses} simulated, jobs={self.jobs}, "
            f"{self.wall_seconds:.2f}s"
        )


def _warm_and_fingerprint(
    cells: Sequence[SimCell], config: PaperConfig, jobs: int
) -> tuple[dict[str, str], dict[str, str], dict[str, Any], dict[str, Any]]:
    """Materialise every needed trace concurrently and fingerprint it.

    The needed-trace set (evaluation traces plus profiling runs for
    trainable-scheme cells) is warmed through
    :func:`repro.experiments.warm.warm_traces` on the engine's worker
    budget; fingerprints are computed in the workers, so the parent's cost
    is independent of trace length.  Workers later receive the on-disk npz
    *paths* (a few bytes each) rather than pickled address arrays.
    """
    from ..warm import TraceWarmError, profile_spec, warm_traces, workload_spec

    eval_specs = {}
    prof_specs = {}
    for cell in cells:
        if cell.workload not in eval_specs:
            eval_specs[cell.workload] = workload_spec(cell.workload, config)
        if cell.needs_profile and cell.workload not in prof_specs:
            prof_specs[cell.workload] = profile_spec(cell.workload, config)
    try:
        entries = warm_traces(
            list(eval_specs.values()) + list(prof_specs.values()),
            config,
            jobs=jobs,
            fingerprints=True,
        )
    except TraceWarmError as exc:
        owner = next((c for c in cells if c.workload == exc.spec.name), None)
        where = (
            f"experiment cell ({owner.workload}, {owner.label})"
            if owner is not None
            else f"workload {exc.spec.name!r}"
        )
        raise CellExecutionError(
            f"{where} failed during trace prefetch: {exc.__cause__}"
        ) from exc
    trace_fp = {w: entries[s].fingerprint for w, s in eval_specs.items()}
    trace_paths: dict[str, Any] = {w: entries[s].path for w, s in eval_specs.items()}
    profile_fp = {w: entries[s].fingerprint for w, s in prof_specs.items()}
    profile_paths: dict[str, Any] = {
        w: entries[s].path for w, s in prof_specs.items()
    }
    return trace_fp, profile_fp, trace_paths, profile_paths


def run_cells(
    cells: Iterable[SimCell],
    config: PaperConfig,
    jobs: int | None = None,
    result_cache: ResultCache | None = None,
) -> tuple[dict[tuple[str, str], SimulationResult], EngineStats]:
    """Execute a cell grid; see the module docstring for the contract."""
    cells = list(cells)
    jobs = effective_jobs(config.jobs if jobs is None else jobs)
    t_start = time.perf_counter()
    stats = EngineStats(jobs=jobs, cells_total=len(cells))

    if result_cache is None and config.use_result_cache:
        result_cache = ResultCache(config.result_cache_path)

    trace_fp, profile_fp, trace_paths, profile_paths = _warm_and_fingerprint(
        cells, config, jobs
    )
    keys = {
        cell: cell_key(
            cell.kind,
            cell.label,
            cell.params,
            config.geometry,
            trace_fp[cell.workload],
            profile_fp.get(cell.workload) if cell.needs_profile else None,
            ways=cell.ways,
            policy=cell.policy,
        )
        for cell in cells
    }

    results: dict[tuple[str, str], SimulationResult] = {}
    pending: list[SimCell] = []
    for cell in cells:
        cached = result_cache.load(keys[cell]) if result_cache is not None else None
        if cached is not None:
            results[(cell.workload, cell.label)] = cached
            stats.cache_hits += 1
        else:
            pending.append(cell)

    computed: dict[SimCell, tuple[SimulationResult, float]] = {}
    if pending:
        if jobs <= 1 or len(pending) == 1:
            for cell in pending:
                try:
                    computed[cell] = timed_execute_cell(
                        cell,
                        config,
                        trace_paths.get(cell.workload),
                        profile_paths.get(cell.workload) if cell.needs_profile else None,
                    )
                except Exception as exc:
                    raise CellExecutionError(
                        f"experiment cell ({cell.workload}, {cell.label}) failed: {exc}"
                    ) from exc
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    cell: pool.submit(
                        timed_execute_cell,
                        cell,
                        config,
                        trace_paths.get(cell.workload),
                        profile_paths.get(cell.workload) if cell.needs_profile else None,
                    )
                    for cell in pending
                }
                for cell, future in futures.items():
                    try:
                        computed[cell] = future.result()
                    except Exception as exc:
                        raise CellExecutionError(
                            f"experiment cell ({cell.workload}, {cell.label}) "
                            f"failed in worker: {exc}"
                        ) from exc

    for cell in pending:
        result, seconds = computed[cell]
        results[(cell.workload, cell.label)] = result
        stats.cache_misses += 1
        stats.cell_seconds[cell.name] = seconds
        if result_cache is not None:
            result_cache.store(keys[cell], result)

    # Deterministic aggregation order: the caller's declaration order, not
    # completion order.
    ordered = {
        (cell.workload, cell.label): results[(cell.workload, cell.label)]
        for cell in cells
    }
    stats.wall_seconds = time.perf_counter() - t_start
    return ordered, stats


class ExperimentEngine:
    """Convenience wrapper binding a config (+ optional overrides)."""

    def __init__(
        self,
        config: PaperConfig,
        jobs: int | None = None,
        result_cache: ResultCache | None = None,
    ):
        self.config = config
        self.jobs = effective_jobs(config.jobs if jobs is None else jobs)
        if result_cache is None and config.use_result_cache:
            result_cache = ResultCache(config.result_cache_path)
        self.result_cache = result_cache

    def run(
        self, cells: Iterable[SimCell]
    ) -> tuple[dict[tuple[str, str], SimulationResult], EngineStats]:
        return run_cells(
            cells, self.config, jobs=self.jobs, result_cache=self.result_cache
        )
