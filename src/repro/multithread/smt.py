"""Shared-L1 SMT cache with per-thread indexing (paper Section IV.E, Fig. 13).

An SMT core's threads share the L1; the paper's proposal gives each thread
its *own* indexing function (their experiments use odd-multiplier with a
different multiplier per thread) so the threads' hot lines land on
different sets instead of fighting over the same ones.

:class:`SMTSharedCache` is a direct-mapped shared array whose set index is
computed by the accessing thread's scheme from a
:class:`~repro.core.selector.ThreadSchemeTable`.  Lines store full block
identities, so correctness holds even though different threads hash
differently (threads have disjoint address spaces in our workloads, as
separate processes under SMT do).

:func:`simulate_smt` drives it from an interleaved multi-thread trace and
reports global and per-thread miss statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.address import CacheGeometry
from ..core.caches.base import EMPTY, CacheStats
from ..core.selector import ThreadSchemeTable
from ..trace.event import Trace

__all__ = ["SMTSharedCache", "SMTResult", "simulate_smt"]


class SMTSharedCache:
    """Direct-mapped shared L1 with a per-thread index function."""

    name = "smt_shared"

    def __init__(self, geometry: CacheGeometry, schemes: ThreadSchemeTable):
        if geometry.ways != 1:
            raise ValueError("the SMT shared cache models a direct-mapped L1")
        for s in schemes.schemes:
            if s.geometry.num_sets != geometry.num_sets:
                raise ValueError("per-thread scheme geometry mismatch")
        self.geometry = geometry
        self.schemes = schemes
        self.stats = CacheStats(geometry.num_sets)
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._owner = np.full(geometry.num_sets, -1, dtype=np.int16)
        self._offset_bits = geometry.offset_bits
        self.thread_hits = np.zeros(len(schemes), dtype=np.int64)
        self.thread_misses = np.zeros(len(schemes), dtype=np.int64)
        self.cross_evictions = 0  # thread A evicting thread B's line

    def access(self, address: int, thread: int, is_write: bool = False) -> bool:
        """Returns True on hit."""
        block = address >> self._offset_bits
        slot = self.schemes.scheme_for(thread).index_of(address)
        self.stats.accesses += 1
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            self.thread_hits[thread] += 1
            self._owner[slot] = thread
            return True
        if self._blocks[slot] != EMPTY and self._owner[slot] != thread:
            self.cross_evictions += 1
        self._blocks[slot] = block
        self._owner[slot] = thread
        self.stats.record_miss(slot)
        self.thread_misses[thread] += 1
        return False

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._owner.fill(-1)


@dataclass
class SMTResult:
    """Outcome of a shared-cache SMT simulation."""

    accesses: int
    misses: int
    thread_hits: np.ndarray
    thread_misses: np.ndarray
    cross_evictions: int
    slot_accesses: np.ndarray
    slot_misses: np.ndarray
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def thread_miss_rate(self, thread: int) -> float:
        total = self.thread_hits[thread] + self.thread_misses[thread]
        return float(self.thread_misses[thread] / total) if total else 0.0


def simulate_smt(cache: SMTSharedCache, trace: Trace) -> SMTResult:
    """Drive a shared cache from an interleaved multi-thread trace."""
    addresses = trace.addresses
    threads = trace.thread
    is_write = trace.is_write
    n_threads = len(cache.schemes)
    if len(trace) and int(threads.max()) >= n_threads:
        raise ValueError("trace references a thread with no indexing scheme")
    for i in range(addresses.size):
        cache.access(int(addresses[i]), int(threads[i]), bool(is_write[i]))
    return SMTResult(
        accesses=cache.stats.accesses,
        misses=cache.stats.misses,
        thread_hits=cache.thread_hits.copy(),
        thread_misses=cache.thread_misses.copy(),
        cross_evictions=cache.cross_evictions,
        slot_accesses=cache.stats.slot_accesses.copy(),
        slot_misses=cache.stats.slot_misses.copy(),
    )
