#!/usr/bin/env python
"""End-to-end smoke of the cluster router, as CI runs it.

Boots a *real* two-worker cluster as subprocesses — two ``repro-cache
serve`` daemons sharing one shared result store, fronted by one
``repro-cache route`` daemon — and exercises the clustering contract over
TCP:

1.  router ``health`` reports both ring workers alive;
2.  a cold sweep is split across the ring exactly as the consistent-hash
    placement (recomputed independently in this process) dictates, and
    every row matches the in-process engine bit-for-bit;
3.  ``fig1`` routed cold, then rerun — the rerun is answered entirely
    from cache (zero new simulations) and is bit-identical;
4.  a worker is SIGKILLed mid-burst: the burst still completes with every
    row ok (structured retriable failover, no client-visible error), the
    router ejects the dead node, and the rows are *still* bit-identical
    to the in-process engine;
5.  exactly-once: a warm rerun of the failover burst executes nothing on
    the survivor, and every requested key exists exactly once in the
    shared store;
6.  ``shutdown`` stops router and surviving worker cleanly.

Run:  PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.ring import HashRing  # noqa: E402
from repro.experiments import PaperConfig  # noqa: E402
from repro.experiments.engine import plan_cells  # noqa: E402
from repro.experiments.engine.cells import execute_cell  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.protocol import sweep_cell  # noqa: E402

REFS = 6000
SCALE = 0.1
CELL_DELAY = 0.3
STARTUP_TIMEOUT = 120.0
SWEEP_LABELS = [
    "baseline", "XOR", "Odd_Multiplier", "Prime_Modulo",
    "2way", "4way", "8way", "FullAssoc",
]


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"cluster-smoke FAILED: {message}")
    print(f"  ok: {message}")


def start(args: list[str], workdir: Path, pattern: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), PYTHONUNBUFFERED="1")
    workdir.mkdir(parents=True, exist_ok=True)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=workdir,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    watchdog = threading.Timer(STARTUP_TIMEOUT, proc.kill)
    watchdog.daemon = True
    watchdog.start()
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline()
    finally:
        watchdog.cancel()
    match = re.search(pattern, line)
    if match is None:
        proc.kill()
        raise SystemExit(f"cluster-smoke FAILED: unexpected startup line {line!r}")
    # Drain further stdout so the daemon never blocks on a full pipe.
    threading.Thread(target=lambda: proc.stdout.read(), daemon=True).start()
    print(f"daemon up: {line.strip()}")
    return proc, int(match.group(1))


def start_worker(workdir: Path, shared: Path) -> tuple[subprocess.Popen, int]:
    return start(
        [
            "serve", "--port", "0", "--jobs", "2", "--threads",
            "--refs", str(REFS), "--scale", str(SCALE),
            "--store", "shared", "--shared-dir", str(shared),
            "--cell-delay", str(CELL_DELAY),
        ],
        workdir,
        r"listening on [\d.]+:(\d+)",
    )


def local_reference(config: PaperConfig, workload: str, labels: list[str]):
    """In-process engine results for the sweep, keyed by label."""
    cells = [sweep_cell(workload, label, config) for label in labels]
    plan = plan_cells(cells, config, jobs=1)
    out = {}
    for label, cell in zip(labels, cells):
        result = execute_cell(
            cell,
            config,
            plan.trace_paths.get(cell.workload),
            plan.profile_paths.get(cell.workload) if cell.needs_profile else None,
        )
        out[label] = (result, plan.keys[cell])
    return out


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro_cluster_smoke_") as tmp:
        root = Path(tmp)
        shared = root / "shared-results"
        w1, p1 = start_worker(root / "w1", shared)
        w2, p2 = start_worker(root / "w2", shared)
        workers = [f"127.0.0.1:{p1}", f"127.0.0.1:{p2}"]
        router_proc, router_port = start(
            ["route", "--port", "0", "--workers", ",".join(workers),
             "--refs", str(REFS), "--scale", str(SCALE),
             "--probe-interval", "0.5"],
            root / "router",
            r"listening on [\d.]+:(\d+)",
        )
        procs = [w1, w2, router_proc]
        # The smoke's own config mirrors the daemons' flags, so its keys
        # and results are the cluster's — that parity IS the test.
        config = replace(
            PaperConfig(),
            ref_limit=REFS,
            workload_scale=SCALE,
            trace_cache_dir=root / "smoke" / "traces",
        )
        try:
            with ServiceClient("127.0.0.1", router_port, timeout=600.0) as client:
                # 1. both workers on the ring and alive
                health = client.health()
                check(health["role"] == "router", "health reports the router role")
                check(
                    health["workers_alive"] == 2,
                    "health reports 2/2 ring workers alive",
                )

                # 2. cold sweep: split per the ring, bit-identical rows
                reference = local_reference(config, "fft", SWEEP_LABELS)
                ring = HashRing(workers)
                expected_shards: dict[str, int] = {}
                for label in SWEEP_LABELS:
                    owner = ring.owner(reference[label][1])
                    expected_shards[owner] = expected_shards.get(owner, 0) + 1
                reply = client.sweep("fft", SWEEP_LABELS, arrays=True)
                check(
                    all(row["ok"] for row in reply["rows"]),
                    f"cold sweep completed all {len(SWEEP_LABELS)} rows",
                )
                check(
                    reply["meta"]["shards"] == expected_shards,
                    f"sweep split matches independent placement {expected_shards}",
                )
                if len(expected_shards) < 2:
                    print("  note: this port draw hashed every key to one worker")
                for row in reply["rows"]:
                    local, _key = reference[row["label"]]
                    check(
                        row["result"]["misses"] == int(local.misses)
                        and row["result"]["slot_misses"]
                        == [int(v) for v in local.slot_misses],
                        f"row {row['label']} bit-identical to in-process engine",
                    )

                # 3. fig1 cold, then answered entirely from cache
                first = client.run_experiment("fig1")["experiment"]
                check(
                    first["engine_stats"]["cache_misses"] > 0,
                    "first fig1 actually simulated (routed)",
                )
                second = client.run_experiment("fig1")["experiment"]
                check(
                    second["engine_stats"]["cache_misses"] == 0,
                    "fig1 rerun is answered entirely from cache",
                )
                check(second["rows"] == first["rows"], "fig1 reruns bit-identical")

                # 4. SIGKILL a worker mid-burst: failover, no client errors
                burst_reference = local_reference(config, "sha", SWEEP_LABELS)
                burst_result: dict = {}

                def burst() -> None:
                    with ServiceClient(
                        "127.0.0.1", router_port, timeout=600.0
                    ) as burst_client:
                        burst_result["reply"] = burst_client.sweep(
                            "sha", SWEEP_LABELS, arrays=True
                        )

                burst_thread = threading.Thread(target=burst)
                burst_thread.start()
                time.sleep(CELL_DELAY)  # land the kill mid-flight
                w2.kill()
                burst_thread.join(timeout=600)
                check(not burst_thread.is_alive(), "burst finished after the kill")
                rows = burst_result["reply"]["rows"]
                check(
                    all(row["ok"] for row in rows),
                    "every burst row completed despite the SIGKILL (failover)",
                )
                for row in rows:
                    local, _key = burst_reference[row["label"]]
                    check(
                        row["result"]["misses"] == int(local.misses),
                        f"failover row {row['label']} bit-identical",
                    )
                deadline = time.time() + 30
                while client.health()["workers_alive"] != 1:
                    check(time.time() < deadline, "router ejected the dead worker")
                    time.sleep(0.2)
                check(True, "router ejected the dead worker (1/2 alive)")

                # 5. exactly-once: a warm rerun executes nothing new...
                stats_before = client.stats()["cluster"]["worker_cell_totals"]
                rerun = client.sweep("sha", SWEEP_LABELS)
                check(all(row["ok"] for row in rerun["rows"]), "warm rerun ok")
                stats_after = client.stats()["cluster"]["worker_cell_totals"]
                check(
                    stats_after["executed"] == stats_before["executed"],
                    "warm rerun simulated nothing (exactly-once)",
                )
                # ...and every requested key is in the shared store once
                # (one .npz per content key, by construction and on disk).
                on_disk = {p.stem for p in shared.glob("*.npz")}
                wanted = {key for _res, key in burst_reference.values()} | {
                    key for _res, key in reference.values()
                }
                check(
                    wanted <= on_disk,
                    f"all {len(wanted)} requested keys present in the shared store",
                )

                # 6. clean shutdown of router and survivor
                check(client.shutdown() is True, "router shutdown acknowledged")
            with ServiceClient("127.0.0.1", p1, timeout=60.0) as wclient:
                check(wclient.shutdown() is True, "survivor shutdown acknowledged")
            check(router_proc.wait(timeout=60) == 0, "router exited cleanly")
            check(w1.wait(timeout=60) == 0, "survivor exited cleanly")
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
    print("cluster-smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
