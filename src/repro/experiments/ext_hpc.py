"""Extension experiment: the Figure-4 comparison on HPC kernels.

The paper closes its methodology section with "we are currently repeating
our experiments with SPEC as well as HPC applications"; this experiment is
that HPC column.  The structured-grid and dense-array kernels are where
alternative indexing shines brightest — power-of-two array dimensions and
capacity-aligned allocations are endemic in HPC codes, and they are exactly
the patterns conventional modulo indexing folds onto a few sets (stream's
triad misses on *every* access under modulo at our alignment; transpose's
column writes thrash).

Columns match Figure 4's line-up plus the three programmable-associativity
caches, all as % miss reduction vs conventional direct-mapped.
"""

from __future__ import annotations

from ..core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    ColumnAssociativeCache,
)
from ..core.simulator import simulate
from ..core.uniformity import percent_reduction
from ..workloads.hpc import HPC_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import baseline_result, indexing_lineup, profile_trace, register_experiment, workload_trace
from ..core.simulator import simulate_indexing

__all__ = ["run_ext_hpc"]


@register_experiment("ext-hpc")
def run_ext_hpc(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    columns = [
        "XOR",
        "Odd_Multiplier",
        "Prime_Modulo",
        "Givargis",
        "Adaptive",
        "B_Cache",
        "ColAssoc",
    ]
    result = ExperimentResult(
        experiment_id="ext-hpc",
        title="% miss reduction vs DM on HPC kernels (the paper's announced next suite)",
        columns=columns,
    )
    for bench in HPC_ORDER:
        trace = workload_trace(bench, config)
        base = baseline_result(trace, config)
        schemes = indexing_lineup(g, trace, config, train_trace=profile_trace(bench, config))
        row = {}
        for label in ("XOR", "Odd_Multiplier", "Prime_Modulo", "Givargis"):
            sim = simulate_indexing(schemes[label], trace, g)
            row[label] = percent_reduction(sim.misses, base.misses)
        row["Adaptive"] = percent_reduction(
            simulate(
                AdaptiveGroupAssociativeCache(
                    g, sht_fraction=config.sht_fraction, out_fraction=config.out_fraction
                ),
                trace,
            ).misses,
            base.misses,
        )
        row["B_Cache"] = percent_reduction(
            simulate(
                BalancedCache(
                    g, mapping_factor=config.bcache_mapping_factor, bas=config.bcache_bas
                ),
                trace,
            ).misses,
            base.misses,
        )
        row["ColAssoc"] = percent_reduction(
            simulate(ColumnAssociativeCache(g), trace).misses, base.misses
        )
        result.add_row(bench, row)
    result.add_average_row()
    result.note("stream/transpose/jacobi: the power-of-2 pathologies hashing fixes")
    result.note("histogram/spmv: random scatter — placement-insensitive controls")
    return result


from .warm import profile_spec, provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-hpc")
def ext_hpc_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in HPC_ORDER] + [
        profile_spec(b, config) for b in HPC_ORDER
    ]
