"""Average memory access time (AMAT) models.

Implements the paper's two explicit formulas plus general forms:

* Eq. (8), adaptive cache::

      AMAT = f_direct·1 + (1 - f_direct)·3 + miss_rate · miss_penalty

  where ``f_direct`` is the fraction of *accesses* serviced by the primary
  probe; every other access (OUT-directory hits *and* misses, which also
  search the OUT before descending) pays the 3-cycle path.

* Eq. (9), column-associative cache::

      AMAT = f_rehash_hit·2 + (1 - f_rehash_hit)·1
           + (f_rehash_miss · miss_rate) · (miss_penalty + 1)
           + ((1 - f_rehash_miss) · miss_rate) · miss_penalty

  where ``f_rehash_hit`` is the fraction of *accesses* that hit on the
  second probe (first two terms together charge every access its hit-path
  latency) and ``f_rehash_miss`` the fraction of *misses* that probed both
  locations before descending (those pay one extra cycle).

* the textbook direct-mapped form ``hit_time + miss_rate · miss_penalty``;

* an exact cycle-accounting form fed by the simulator's per-access lookup
  cycles, used to cross-validate the analytic formulas in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TimingModel",
    "amat_direct_mapped",
    "amat_adaptive",
    "amat_column_associative",
    "amat_from_cycles",
]


@dataclass(frozen=True)
class TimingModel:
    """Latency parameters shared by the AMAT formulas.

    The paper gives the structural constants (1-cycle primary hit, 2-cycle
    column-associative rehash hit, 3-cycle adaptive OUT path) but not its L1
    miss penalty; 18 cycles is a representative L2 round-trip for the era
    and is swept in the sensitivity bench.
    """

    hit_cycles: int = 1
    column_rehash_hit_cycles: int = 2
    adaptive_out_cycles: int = 3
    miss_penalty: float = 18.0
    l2_miss_penalty: float = 120.0

    def scaled(self, miss_penalty: float) -> "TimingModel":
        return TimingModel(
            self.hit_cycles,
            self.column_rehash_hit_cycles,
            self.adaptive_out_cycles,
            miss_penalty,
            self.l2_miss_penalty,
        )


def amat_direct_mapped(miss_rate: float, timing: TimingModel | None = None) -> float:
    """Textbook AMAT for a single-probe cache."""
    timing = timing or TimingModel()
    return timing.hit_cycles + miss_rate * timing.miss_penalty


def amat_adaptive(
    fraction_direct: float, miss_rate: float, timing: TimingModel | None = None
) -> float:
    """Paper Eq. (8).  ``fraction_direct`` = direct hits / accesses."""
    timing = timing or TimingModel()
    if not 0.0 <= fraction_direct <= 1.0:
        raise ValueError("fraction_direct must be a probability")
    lookup = fraction_direct * timing.hit_cycles + (1.0 - fraction_direct) * timing.adaptive_out_cycles
    return lookup + miss_rate * timing.miss_penalty


def amat_column_associative(
    fraction_rehash_hits: float,
    fraction_rehash_misses: float,
    miss_rate: float,
    timing: TimingModel | None = None,
) -> float:
    """Paper Eq. (9).

    ``fraction_rehash_hits`` = rehash (second-probe) hits / accesses;
    ``fraction_rehash_misses`` = both-probe misses / misses.
    """
    timing = timing or TimingModel()
    for frac in (fraction_rehash_hits, fraction_rehash_misses):
        if not 0.0 <= frac <= 1.0:
            raise ValueError("fractions must be probabilities")
    hit_path = (
        fraction_rehash_hits * timing.column_rehash_hit_cycles
        + (1.0 - fraction_rehash_hits) * timing.hit_cycles
    )
    miss_path = (
        fraction_rehash_misses * miss_rate * (timing.miss_penalty + 1.0)
        + (1.0 - fraction_rehash_misses) * miss_rate * timing.miss_penalty
    )
    return hit_path + miss_path


def amat_from_cycles(
    total_lookup_cycles: int, misses: int, accesses: int, timing: TimingModel | None = None
) -> float:
    """Exact AMAT from simulated per-access lookup cycles.

    ``total_lookup_cycles`` must be the sum of
    :attr:`~repro.core.caches.base.AccessResult.cycles` over the trace; each
    miss additionally pays the timing model's miss penalty.
    """
    timing = timing or TimingModel()
    if accesses <= 0:
        return 0.0
    return (total_lookup_cycles + misses * timing.miss_penalty) / accesses
