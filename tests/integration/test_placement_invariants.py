"""Placement invariants, property-tested over random access sequences.

Each architecture promises *where* a resident block can live; these tests
replay random traces and then audit the entire contents against that
promise.  A violated invariant means a block became unreachable (a
correctness bug no miss-rate test would catch).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import CacheGeometry
from repro.core.caches import (
    BalancedCache,
    ColumnAssociativeCache,
    DirectMappedCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
    VictimCache,
)
from repro.core.caches.adaptive import AdaptiveGroupAssociativeCache
from repro.core.caches.base import EMPTY

G = CacheGeometry(capacity_bytes=2048, line_bytes=32, ways=1, address_bits=20)

trace_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=400
)


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_direct_mapped_blocks_live_at_their_index(addrs):
    c = DirectMappedCache(G)
    for a in addrs:
        c.access(a)
    for slot in range(G.num_sets):
        b = int(c._blocks[slot])
        if b != EMPTY:
            assert c.indexing.index_of(b << G.offset_bits) == slot


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_column_associative_blocks_reachable(addrs):
    """A resident block sits at its primary index or its alternate —
    anywhere else and lookups could never find it again."""
    c = ColumnAssociativeCache(G)
    for a in addrs:
        c.access(a)
    for slot in range(G.num_sets):
        b = int(c._blocks[slot])
        if b != EMPTY:
            primary = c.indexing.index_of(b << G.offset_bits)
            assert slot in (primary, c.alternate_of(primary))
            # Out-of-place residency must be flagged by the rehash bit.
            if slot != primary:
                assert c._rehash[slot]


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_adaptive_blocks_reachable(addrs):
    """A resident block is in its primary set, or covered by a live OUT
    entry (else it is dead weight no lookup can reach)."""
    c = AdaptiveGroupAssociativeCache(G)
    for a in addrs:
        c.access(a)
    out = dict(c._out)
    for slot in range(G.num_sets):
        b = int(c._blocks[slot])
        if b != EMPTY:
            primary = c.indexing.index_of(b << G.offset_bits)
            assert slot == primary or out.get(b) == slot, (
                f"block {b} stranded at {slot} (primary {primary})"
            )


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_bcache_blocks_live_in_their_cluster(addrs):
    c = BalancedCache(G, mapping_factor=2, bas=2)
    for a in addrs:
        c.access(a)
    c.check_invariants()  # cluster membership + PI uniqueness + PI registers


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_skewed_blocks_live_at_their_bank_index(addrs):
    c = SkewedAssociativeCache(G, ways=2)
    for a in addrs:
        c.access(a)
    for bank in range(c.ways):
        scheme = c.schemes[bank]
        for idx in range(c.bank_geometry.num_sets):
            b = int(c._blocks[bank, idx])
            if b != EMPTY:
                assert scheme.index_of(b << G.offset_bits) == idx


@settings(max_examples=30, deadline=None)
@given(trace_strategy)
def test_victim_cache_partition(addrs):
    """Main-array blocks sit at their index; buffer blocks are disjoint."""
    c = VictimCache(G, victim_lines=4)
    for a in addrs:
        c.access(a)
    c.check_invariants()
    for slot in range(G.num_sets):
        b = int(c.base._blocks[slot])
        if b != EMPTY:
            assert c.indexing.index_of(b << G.offset_bits) == slot


@settings(max_examples=20, deadline=None)
@given(trace_strategy, st.sampled_from([2, 4]))
def test_set_associative_blocks_in_their_set(addrs, ways):
    g = CacheGeometry(G.capacity_bytes, G.line_bytes, ways, G.address_bits)
    c = SetAssociativeCache(g)
    for a in addrs:
        c.access(a)
    for s in range(g.num_sets):
        for w in range(ways):
            b = int(c._blocks[s, w])
            if b != EMPTY:
                assert c.indexing.index_of(b << g.offset_bits) == s


@settings(max_examples=20, deadline=None)
@given(trace_strategy)
def test_most_recent_block_always_resident(addrs):
    """Whatever the architecture, the block just accessed must be resident
    (write-allocate): a second immediate access is a guaranteed hit."""
    for factory in (
        lambda: DirectMappedCache(G),
        lambda: ColumnAssociativeCache(G),
        lambda: AdaptiveGroupAssociativeCache(G),
        lambda: BalancedCache(G),
        lambda: SkewedAssociativeCache(G),
        lambda: VictimCache(G, victim_lines=2),
    ):
        c = factory()
        for a in addrs:
            c.access(a)
            assert c.access(a).hit, type(c).__name__
