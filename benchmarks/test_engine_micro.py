"""Engine micro-benchmarks: throughput of the two simulation engines and of
every indexing scheme's vectorised path.

These are the repository's performance-regression canaries: the vectorised
direct-mapped path should sustain millions of references per second and stay
well over an order of magnitude faster than the sequential engine.
"""

from __future__ import annotations

import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.caches import DirectMappedCache
from repro.core.indexing import (
    GivargisIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import simulate, simulate_indexing
from repro.trace import zipf_trace

G = PAPER_L1_GEOMETRY
TRACE = zipf_trace(200_000, seed=17)


def test_vectorised_engine_throughput(benchmark):
    scheme = ModuloIndexing(G)
    result = benchmark(lambda: simulate_indexing(scheme, TRACE, G))
    assert result.accesses == len(TRACE)


def test_sequential_engine_throughput(benchmark):
    short = TRACE[:20_000]

    def run():
        return simulate(DirectMappedCache(G), short)

    assert benchmark(run).accesses == 20_000


@pytest.mark.parametrize(
    "scheme_factory",
    [ModuloIndexing, XorIndexing, PrimeModuloIndexing,
     lambda g: OddMultiplierIndexing(g, 31)],
    ids=["modulo", "xor", "prime_modulo", "odd_multiplier"],
)
def test_scheme_mapping_throughput(benchmark, scheme_factory):
    scheme = scheme_factory(G)
    idx = benchmark(lambda: scheme.indices_of(TRACE.addresses))
    assert idx.size == len(TRACE)


def test_givargis_training_cost(benchmark):
    def run():
        return GivargisIndexing(G).fit(TRACE.addresses)

    assert benchmark(run).fitted
