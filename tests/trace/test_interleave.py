"""Interleaving tests: program order per thread is sacred."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import Trace, block_interleave, random_interleave, round_robin


def make_trace(values, name="t"):
    return Trace(np.array(values, dtype=np.uint64), name=name)


def assert_program_order_preserved(mixed: Trace, originals: list[Trace]):
    for i, orig in enumerate(originals):
        sub = mixed.addresses[mixed.thread == i]
        np.testing.assert_array_equal(sub, orig.addresses)


lengths = st.lists(st.integers(min_value=0, max_value=40), min_size=2, max_size=4)


class TestRoundRobin:
    def test_alternation(self):
        a = make_trace([1, 2, 3])
        b = make_trace([10, 20, 30])
        mix = round_robin([a, b])
        assert mix.addresses.tolist() == [1, 10, 2, 20, 3, 30]
        assert mix.thread.tolist() == [0, 1, 0, 1, 0, 1]

    def test_unequal_lengths_drain(self):
        a = make_trace([1])
        b = make_trace([10, 20, 30])
        mix = round_robin([a, b])
        assert len(mix) == 4
        assert_program_order_preserved(mix, [a, b])

    @settings(max_examples=30)
    @given(lengths)
    def test_property_full_consumption(self, lens):
        traces = [make_trace(list(range(i * 100, i * 100 + n))) for i, n in enumerate(lens)]
        mix = round_robin(traces)
        assert len(mix) == sum(lens)
        assert_program_order_preserved(mix, traces)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            round_robin([])


class TestRandomInterleave:
    def test_order_preserved(self):
        a = make_trace(list(range(50)))
        b = make_trace(list(range(100, 160)))
        mix = random_interleave([a, b], seed=3)
        assert_program_order_preserved(mix, [a, b])
        assert len(mix) == 110

    def test_seed_determinism(self):
        a = make_trace(list(range(30)))
        b = make_trace(list(range(100, 130)))
        m1 = random_interleave([a, b], seed=9)
        m2 = random_interleave([a, b], seed=9)
        np.testing.assert_array_equal(m1.addresses, m2.addresses)

    def test_different_seeds_differ(self):
        a = make_trace(list(range(30)))
        b = make_trace(list(range(100, 130)))
        m1 = random_interleave([a, b], seed=1)
        m2 = random_interleave([a, b], seed=2)
        assert not np.array_equal(m1.thread, m2.thread)


class TestBlockInterleave:
    def test_quantum_bursts(self):
        a = make_trace(list(range(8)))
        b = make_trace(list(range(100, 108)))
        mix = block_interleave([a, b], quantum=4)
        assert mix.thread[:4].tolist() == [0] * 4
        assert mix.thread[4:8].tolist() == [1] * 4

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            block_interleave([make_trace([1])], quantum=0)

    @settings(max_examples=20)
    @given(lengths, st.integers(min_value=1, max_value=7))
    def test_property_full_consumption(self, lens, quantum):
        traces = [make_trace(list(range(i * 100, i * 100 + n))) for i, n in enumerate(lens)]
        mix = block_interleave(traces, quantum=quantum)
        assert len(mix) == sum(lens)
        assert_program_order_preserved(mix, traces)

    def test_retags_by_position(self):
        # Input thread ids are ignored; position in the list decides.
        a = Trace(np.array([1], dtype=np.uint64), thread=np.array([5], dtype=np.int16))
        mix = block_interleave([a], quantum=2)
        assert mix.thread.tolist() == [0]
