"""Indexing-scheme unit and property tests (paper Section II)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.indexing import (
    SCHEME_REGISTRY,
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
    available_schemes,
    is_prime,
    largest_prime_at_most,
    make_scheme,
    primes_up_to,
)

G = PAPER_L1_GEOMETRY

addr_strategy = st.integers(min_value=0, max_value=(1 << 32) - 1)


def all_stateless_schemes(geometry):
    return [
        ModuloIndexing(geometry),
        XorIndexing(geometry),
        OddMultiplierIndexing(geometry, 9),
        OddMultiplierIndexing(geometry, 61),
        PrimeModuloIndexing(geometry),
    ]


class TestRegistry:
    def test_expected_schemes_present(self):
        assert {
            "modulo",
            "xor",
            "odd_multiplier",
            "prime_modulo",
            "givargis",
            "givargis_xor",
            "patel",
            "bit_select",
        } <= set(available_schemes())

    def test_make_scheme_passes_params(self):
        s = make_scheme("odd_multiplier", G, multiplier=31)
        assert s.multiplier == 31

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("quantum", G)


class TestRangeProperty:
    @settings(max_examples=200)
    @given(addr_strategy)
    def test_all_schemes_in_range(self, addr):
        for scheme in all_stateless_schemes(G):
            idx = scheme.index_of(addr)
            assert 0 <= idx < G.num_sets, scheme.name

    @settings(max_examples=25)
    @given(st.lists(addr_strategy, min_size=1, max_size=100))
    def test_vectorised_matches_scalar(self, addrs):
        arr = np.array(addrs, dtype=np.uint64)
        for scheme in all_stateless_schemes(G):
            np.testing.assert_array_equal(
                scheme.indices_of(arr),
                [scheme.index_of(a) for a in addrs],
                err_msg=scheme.name,
            )

    @settings(max_examples=100)
    @given(addr_strategy, st.integers(min_value=0, max_value=31))
    def test_offset_invariance(self, addr, offset):
        """Bytes within one line always map to one set (every scheme)."""
        base = addr & ~31
        for scheme in all_stateless_schemes(G):
            assert scheme.index_of(base) == scheme.index_of(base | offset), scheme.name


class TestModulo:
    def test_matches_geometry(self):
        s = ModuloIndexing(G)
        for addr in (0, 0x1234, 0xFFFF_FFFF, 0xDEAD_BEEF):
            assert s.index_of(addr) == G.index_of(addr)

    def test_consecutive_lines_consecutive_sets(self):
        s = ModuloIndexing(G)
        assert s.index_of(32) == s.index_of(0) + 1


class TestXor:
    def test_zero_tag_is_identity(self):
        s = XorIndexing(G)
        # Address with all tag bits zero: XOR leaves the index unchanged.
        addr = 0x7FFF  # fits in offset+index bits
        assert s.index_of(addr) == G.index_of(addr)

    def test_separates_same_index_different_tags(self):
        s = XorIndexing(G)
        a = G.rebuild_address(tag=1, index=5)
        b = G.rebuild_address(tag=2, index=5)
        assert G.index_of(a) == G.index_of(b)
        assert s.index_of(a) != s.index_of(b)

    def test_is_permutation_within_tag(self):
        """For a fixed tag, the map index -> xor-index is a bijection."""
        s = XorIndexing(G)
        images = {s.index_of(G.rebuild_address(tag=7, index=i)) for i in range(1024)}
        assert len(images) == 1024

    def test_tag_bit_offset(self):
        s0 = XorIndexing(G, tag_bit_offset=0)
        s5 = XorIndexing(G, tag_bit_offset=5)
        addr = G.rebuild_address(tag=0b11111_00000_00000_11, index=0)
        assert s0.index_of(addr) != s5.index_of(addr)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            XorIndexing(G, tag_bit_offset=-1)


class TestOddMultiplier:
    def test_rejects_even(self):
        with pytest.raises(ValueError):
            OddMultiplierIndexing(G, 8)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OddMultiplierIndexing(G, -3)

    def test_formula(self):
        s = OddMultiplierIndexing(G, 9)
        addr = G.rebuild_address(tag=3, index=17)
        assert s.index_of(addr) == (9 * 3 + 17) % 1024

    def test_zero_tag_is_identity(self):
        s = OddMultiplierIndexing(G, 21)
        assert s.index_of(G.rebuild_address(tag=0, index=100)) == 100

    def test_is_permutation_within_tag(self):
        s = OddMultiplierIndexing(G, 31)
        images = {s.index_of(G.rebuild_address(tag=5, index=i)) for i in range(1024)}
        assert len(images) == 1024

    def test_different_multipliers_differ(self):
        addr = G.rebuild_address(tag=99, index=1)
        outs = {OddMultiplierIndexing(G, m).index_of(addr) for m in (9, 21, 31, 61)}
        assert len(outs) > 1


class TestPrimeUtilities:
    def test_is_prime_small(self):
        primes = {2, 3, 5, 7, 11, 13, 1021}
        for p in primes:
            assert is_prime(p)
        for c in (0, 1, 4, 9, 1023, 1024):
            assert not is_prime(c)

    def test_largest_prime_at_most(self):
        assert largest_prime_at_most(1024) == 1021
        assert largest_prime_at_most(2) == 2
        with pytest.raises(ValueError):
            largest_prime_at_most(1)

    def test_primes_up_to_matches_is_prime(self):
        assert primes_up_to(100) == [n for n in range(101) if is_prime(n)]

    def test_sieve_empty(self):
        assert primes_up_to(1) == []


class TestPrimeModulo:
    def test_default_prime_is_1021(self):
        s = PrimeModuloIndexing(G)
        assert s.prime == 1021
        assert s.usable_sets == 1021
        assert s.fragmented_sets == 3

    def test_fragmentation_property(self, rng):
        """Sets >= p are never produced (paper Section II.B)."""
        s = PrimeModuloIndexing(G)
        addrs = rng.integers(0, 1 << 32, size=20_000, dtype=np.uint64)
        assert int(s.indices_of(addrs).max()) < 1021

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeModuloIndexing(G, prime=1024)

    def test_rejects_oversized_prime(self):
        with pytest.raises(ValueError):
            PrimeModuloIndexing(G, prime=2053)

    def test_breaks_power_of_two_stride(self):
        """A 32 KiB stride maps all accesses to one set conventionally but
        spreads under prime modulo — the scheme's whole point."""
        mod = ModuloIndexing(G)
        prime = PrimeModuloIndexing(G)
        addrs = np.arange(64, dtype=np.uint64) * np.uint64(32 * 1024)
        assert len(set(mod.indices_of(addrs).tolist())) == 1
        assert len(set(prime.indices_of(addrs).tolist())) == 64


class TestBitSelect:
    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError):
            BitSelectIndexing(G, positions=(5, 6))

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            BitSelectIndexing(G, positions=(5,) * 10)

    def test_out_of_range_position(self):
        with pytest.raises(ValueError):
            BitSelectIndexing(G, positions=(5, 6, 7, 8, 9, 10, 11, 12, 13, 40))

    def test_conventional_selection_equals_modulo(self):
        s = BitSelectIndexing(G, positions=tuple(range(5, 15)))
        m = ModuloIndexing(G)
        for addr in (0, 0xABCDEF, 0xFFFFFFFF):
            assert s.index_of(addr) == m.index_of(addr)
