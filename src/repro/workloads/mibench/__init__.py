"""MiBench workload kernels (the 11 benchmarks of the paper's Figures 1,
4, 6, 7, 9-12).  Importing this package registers them all."""

from .adpcm import AdpcmWorkload
from .basicmath import BasicmathWorkload
from .bitcount import BitcountWorkload
from .crc import CRCWorkload
from .dijkstra import DijkstraWorkload
from .fft import FFTWorkload
from .patricia import PatriciaWorkload
from .qsort import QsortWorkload
from .rijndael import RijndaelWorkload
from .sha import ShaWorkload
from .susan import SusanWorkload

#: The paper's Figure 4/6 benchmark order.
MIBENCH_ORDER = [
    "adpcm",
    "basicmath",
    "bitcount",
    "crc",
    "dijkstra",
    "fft",
    "patricia",
    "qsort",
    "rijndael",
    "sha",
    "susan",
]

__all__ = [
    "AdpcmWorkload",
    "BasicmathWorkload",
    "BitcountWorkload",
    "CRCWorkload",
    "DijkstraWorkload",
    "FFTWorkload",
    "PatriciaWorkload",
    "QsortWorkload",
    "RijndaelWorkload",
    "ShaWorkload",
    "SusanWorkload",
    "MIBENCH_ORDER",
]
