"""SPEC-like ``calculix`` — finite-element sparse solves.

Mechanistic stand-in for 454.calculix's solver phase: conjugate-gradient
iterations over a CSR sparse matrix assembled from a 2-D grid Laplacian
(5-point stencil → banded sparsity).  Accesses: sequential row_ptr/value
streams, *indirect* ``x[col]`` gathers with grid-bandwidth strides, dense
vector updates.  At the default 64x64 grid the four CG vectors are each the
size of the paper's L1 and sit at capacity-aligned heap offsets, so the
element-wise x/r/p/Ap sweeps conflict multi-way under conventional indexing
— the recurring-conflict behaviour that makes FEM solvers respond to index
hashing.  CG convergence on the SPD system is asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["CalculixWorkload", "grid_laplacian_csr"]


def grid_laplacian_csr(side: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(row_ptr, col_idx, values) of the 5-point Laplacian on side×side."""
    n = side * side
    rows: list[int] = [0]
    cols: list[int] = []
    vals: list[float] = []
    for y in range(side):
        for x in range(side):
            i = y * side + x
            entries = [(i, 4.0)]
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < side and 0 <= ny < side:
                    entries.append((ny * side + nx, -1.0))
            entries.sort()
            for j, v in entries:
                cols.append(j)
                vals.append(v)
            rows.append(len(cols))
    return (
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


@register_workload
class CalculixWorkload(Workload):
    name = "calculix"
    suite = "spec"
    description = "Conjugate-gradient FEM solve over a grid Laplacian (CSR)"
    access_pattern = "CSR streaming + indirect x[col] gathers + vector sweeps"

    def kernel(self, m: Recorder, scale: float) -> None:
        side = self.scaled(64, scale, minimum=6)
        n = side * side
        iters = self.scaled(30, scale, minimum=3)
        row_ptr, col_idx, vals = grid_laplacian_csr(side)
        rp_arr = m.space.heap_array(8, n + 1, "row_ptr")
        ci_arr = m.space.heap_array(4, col_idx.size, "col_idx")
        va_arr = m.space.heap_array(8, vals.size, "values")
        x_arr = m.space.heap_array(8, n, "x")
        r_arr = m.space.heap_array(8, n, "r")
        p_arr = m.space.heap_array(8, n, "p")
        ap_arr = m.space.heap_array(8, n, "Ap")

        b = m.rng.normal(0, 1, size=n)
        x = np.zeros(n)
        r = b.copy()
        p = r.copy()
        rs_old = float(r @ r)
        for it in range(iters):
            # Ap = A @ p, emitted element-wise (the hot loop).
            ap = np.zeros(n)
            for i in range(n):
                m.load_elem(rp_arr, i)
                m.load_elem(rp_arr, i + 1)
                acc = 0.0
                for k in range(int(row_ptr[i]), int(row_ptr[i + 1])):
                    m.load_elem(ci_arr, k)
                    m.load_elem(va_arr, k)
                    j = int(col_idx[k])
                    m.load_elem(p_arr, j)
                    acc += float(vals[k]) * p[j]
                ap[i] = acc
                m.store_elem(ap_arr, i)
            denom = float(p @ ap)
            for i in range(n):
                m.load_elem(p_arr, i)
                m.load_elem(ap_arr, i)
            if denom == 0:
                break
            alpha = rs_old / denom
            x += alpha * p
            r -= alpha * ap
            for i in range(n):
                m.store_elem(x_arr, i)
                m.store_elem(r_arr, i)
            rs_new = float(r @ r)
            for i in range(n):
                m.load_elem(r_arr, i)
            if rs_new < 1e-18:
                break
            p = r + (rs_new / rs_old) * p
            for i in range(n):
                m.store_elem(p_arr, i)
            rs_old = rs_new
        m.builder.meta["residual"] = rs_old
        m.builder.meta["n"] = n
