"""Cache indexing schemes (paper Section II).

Importing this package populates the scheme registry; use
:func:`make_scheme`/:func:`available_schemes` for name-based construction.
"""

from .base import (
    SCHEME_REGISTRY,
    IndexingScheme,
    TrainableIndexingScheme,
    available_schemes,
    make_scheme,
    register_scheme,
)
from .bit_select import BitSelectIndexing, candidate_bit_positions
from .givargis import GivargisIndexing
from .givargis_xor import GivargisXorIndexing
from .modulo import ModuloIndexing
from .odd_multiplier import RECOMMENDED_MULTIPLIERS, OddMultiplierIndexing
from .patel import PatelIndexing
from .prime_modulo import PrimeModuloIndexing, is_prime, largest_prime_at_most, primes_up_to
from .xor import XorIndexing

__all__ = [
    "IndexingScheme",
    "TrainableIndexingScheme",
    "register_scheme",
    "make_scheme",
    "available_schemes",
    "SCHEME_REGISTRY",
    "ModuloIndexing",
    "XorIndexing",
    "OddMultiplierIndexing",
    "RECOMMENDED_MULTIPLIERS",
    "PrimeModuloIndexing",
    "is_prime",
    "largest_prime_at_most",
    "primes_up_to",
    "GivargisIndexing",
    "GivargisXorIndexing",
    "PatelIndexing",
    "BitSelectIndexing",
    "candidate_bit_positions",
]
