"""Job-server serving-throughput canaries.

Measures the *serving* overhead of :mod:`repro.service` — protocol
round-trip, scheduler admission, single-flight bookkeeping and result
fan-out — against a warm result cache, so simulation time is out of the
picture and a regression here means the serving layer itself got slower.

Two shapes, mirroring the serving disciplines:

* ``uncoalesced``: one client, sequential identical requests — every
  request runs the full admission + flight + cache-probe path alone;
* ``coalesced``: a 16-thread burst of identical requests — concurrent
  submissions share flights, so this additionally prices the fan-out.

Both report requests/second via pytest-benchmark's ``extra_info``.  Like
every canary, they are gated by ``benchmarks/check_regression.py`` once a
committed ``BENCH_*.json`` baseline contains them (new canaries never
fail the gate on their own).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from repro.experiments import PaperConfig
from repro.service import ReproServer, ServiceClient

#: Tiny simulation: the canaries measure serving, not simulating.
SERVICE_REFS = 6000
BURST = 16
SEQUENTIAL = 32


@pytest.fixture(scope="module")
def service_server(tmp_path_factory):
    """One warm thread-mode daemon for the whole module."""
    root = tmp_path_factory.mktemp("service_bench")
    config = replace(
        PaperConfig(),
        ref_limit=SERVICE_REFS,
        workload_scale=0.1,
        jobs=1,
        trace_cache_dir=root / "traces",
    )
    server = ReproServer(config, port=0, workers=4, use_processes=False)
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-bench-server", daemon=True)
    thread.start()
    assert started.wait(60)
    # Warm the result cache so every measured request is serving overhead.
    with ServiceClient("127.0.0.1", server.port) as client:
        client.submit_cell("indexing", "fft", "XOR")
    yield server
    try:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.shutdown()
    except OSError:
        pass
    thread.join(30)


def test_service_uncoalesced_throughput(benchmark, service_server):
    """Sequential identical requests on one connection (cache-hit path)."""

    def run() -> int:
        with ServiceClient("127.0.0.1", service_server.port) as client:
            hits = 0
            for _ in range(SEQUENTIAL):
                reply = client.submit_cell("indexing", "fft", "XOR")
                hits += bool(reply["meta"]["cache_hit"])
        return hits

    hits = benchmark(run)
    assert hits == SEQUENTIAL  # warm cache: pure serving overhead
    benchmark.extra_info["requests_per_round"] = SEQUENTIAL
    benchmark.extra_info["requests_per_second"] = round(
        SEQUENTIAL / benchmark.stats.stats.min, 1
    )


def test_service_coalesced_burst_throughput(benchmark, service_server):
    """A 16-thread burst of identical requests (flight sharing + fan-out)."""
    pool = ThreadPoolExecutor(max_workers=BURST)

    def one(_i: int) -> bool:
        with ServiceClient("127.0.0.1", service_server.port) as client:
            return bool(client.submit_cell("indexing", "fft", "XOR")["result"])

    def run() -> int:
        return sum(pool.map(one, range(BURST)))

    try:
        ok = benchmark(run)
    finally:
        pool.shutdown(wait=True)
    assert ok == BURST
    # The whole module ran against one warm cell: nothing was ever
    # simulated twice (the exactly-once serving property, priced here).
    assert service_server.stats.cells_executed <= 1
    benchmark.extra_info["requests_per_round"] = BURST
    benchmark.extra_info["requests_per_second"] = round(
        BURST / benchmark.stats.stats.min, 1
    )
