"""The asyncio JSON-lines-over-TCP simulation daemon.

One :class:`ReproServer` owns a :class:`~repro.service.scheduler.CellScheduler`
(persistent worker pool + single-flight + backpressure), a small thread
pool for blocking ``experiment`` runs, and a :class:`ServiceStats` surface.
Each accepted connection reads newline-delimited JSON requests; every
request is dispatched as its own task, so one connection can pipeline many
requests and slow work never blocks ``health`` probes.

Serving semantics (locked by ``tests/service/test_server.py``):

* responses/events for concurrent requests interleave, correlated by the
  request ``id``; a per-connection write lock keeps frames atomic;
* client disconnect cancels that connection's outstanding request tasks,
  which releases their scheduler waiters (and thereby any flight no other
  client is waiting on);
* ``experiment`` requests run the *unmodified* figure runners in a thread,
  with two engine context hooks: a progress hook streaming one event per
  settled cell, and the scheduler's persistent pool injected via
  :func:`~repro.experiments.engine.parallel.engine_pool_scope` so even
  whole-figure grids reuse the warm workers;
* every error is a structured frame (``overloaded`` / ``timeout`` /
  ``bad_request`` / ``internal``) — a request is never answered with a
  hang or a dropped connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Awaitable, Callable

from .. import __version__
from ..experiments.config import PaperConfig
from ..experiments.engine.parallel import engine_pool_scope, progress_scope
from . import protocol
from .protocol import (
    E_BAD_REQUEST,
    E_CANCELLED,
    E_INTERNAL,
    E_OVERLOADED,
    E_TIMEOUT,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
)
from .scheduler import CellScheduler, DeadlineExceeded, Overloaded
from .stats import ServiceStats

__all__ = ["ReproServer"]

Send = Callable[[dict[str, Any]], Awaitable[None]]


class ReproServer:
    """Long-lived simulation job server (see module docstring)."""

    def __init__(
        self,
        config: PaperConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        max_pending: int = 64,
        use_processes: bool = True,
        default_deadline: float | None = None,
    ):
        self.config = config if config is not None else PaperConfig()
        if self.config.cell_timeout is None and default_deadline is not None:
            # The engine-side per-cell budget defaults to the request deadline
            # discipline, so a hung worker cannot outlive its request forever.
            self.config = replace(self.config, cell_timeout=default_deadline)
        self.host = host
        self.port = port
        self.default_deadline = default_deadline
        self.stats = ServiceStats()
        self.scheduler = CellScheduler(
            self.config,
            workers=workers,
            max_pending=max_pending,
            use_processes=use_processes,
            stats=self.stats,
        )
        #: Blocking ``run_experiment`` calls run here — never on the cell
        #: pool, so a figure waiting on its cells can't deadlock itself.
        self._experiment_pool = ThreadPoolExecutor(
            max_workers=max(2, workers), thread_name_prefix="repro-experiment"
        )
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`) arrives."""
        assert self._stopping is not None, "call start() first"
        await self._stopping.wait()
        await self.close()

    async def close(self) -> None:
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Tear down live connections: their readline loops would otherwise
        # linger as pending tasks past loop shutdown.
        for conn in list(self._connections):
            conn.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.scheduler.close()
        self._experiment_pool.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections_open += 1
        self.stats.connections_total += 1
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connections.add(conn_task)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def send(frame: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_frame(frame))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break  # EOF: client went away.
                if line.strip() == b"":
                    continue
                task = asyncio.create_task(self._serve_request(line, send))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler.  Absorb it so the task
            # finishes cleanly: asyncio.streams' internal done-callback calls
            # task.exception(), which would otherwise spam the loop's
            # exception handler with the CancelledError.
            pass
        finally:
            # Disconnect: cancel this connection's outstanding work so the
            # scheduler can release flights nobody else is waiting on.
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self.stats.connections_open -= 1
            if conn_task is not None:
                self._connections.discard(conn_task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_request(self, line: bytes, send: Send) -> None:
        t0 = time.perf_counter()
        rid: Any = None
        rtype = "invalid"
        try:
            req = decode_frame(line)
            rid = req.get("id")
            rtype = req.get("type")
            self.stats.count_request(str(rtype))
            if rtype not in protocol.REQUEST_TYPES:
                raise ProtocolError(
                    f"unknown request type {rtype!r}; known: "
                    f"{list(protocol.REQUEST_TYPES)}"
                )
            handler = getattr(self, f"_handle_{rtype}")
            payload = await handler(req, send)
            await send({"id": rid, "ok": True, "type": "result", **payload})
        except asyncio.CancelledError:
            # Connection teardown (or server shutdown): best-effort courtesy
            # frame; the transport may already be gone.
            self.stats.count_error(E_CANCELLED)
            with contextlib.suppress(Exception):
                await asyncio.wait_for(
                    send(error_frame(rid, E_CANCELLED, "request cancelled")), 0.2
                )
            raise
        except ProtocolError as exc:
            await self._send_error(send, rid, exc.code, str(exc))
        except Overloaded as exc:
            await self._send_error(send, rid, E_OVERLOADED, str(exc))
        except DeadlineExceeded as exc:
            await self._send_error(send, rid, E_TIMEOUT, str(exc))
        except Exception as exc:  # noqa: BLE001 — every failure must answer.
            await self._send_error(
                send, rid, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.stats.observe_latency(str(rtype), time.perf_counter() - t0)

    async def _send_error(self, send: Send, rid: Any, code: str, message: str) -> None:
        self.stats.count_error(code)
        with contextlib.suppress(ConnectionError):
            await send(error_frame(rid, code, message))

    # -- request handlers --------------------------------------------------------------

    async def _handle_health(self, req: dict, send: Send) -> dict:
        return {
            "health": self.stats.health(
                __version__,
                extra={
                    "protocol": PROTOCOL_VERSION,
                    "queue_depth": self.scheduler.queue_depth,
                    "in_flight": self.scheduler.in_flight,
                    "max_pending": self.scheduler.max_pending,
                },
            )
        }

    async def _handle_stats(self, req: dict, send: Send) -> dict:
        return {
            "stats": self.stats.snapshot(
                queue_depth=self.scheduler.queue_depth,
                in_flight=self.scheduler.in_flight,
                extra={
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                    "max_pending": self.scheduler.max_pending,
                },
            )
        }

    async def _handle_shutdown(self, req: dict, send: Send) -> dict:
        assert self._stopping is not None
        # Ack first; serve_forever tears the server down right after.
        asyncio.get_running_loop().call_soon(self._stopping.set)
        return {"shutting_down": True}

    async def _handle_cell(self, req: dict, send: Send) -> dict:
        cell, config = protocol.normalize_cell_request(req, self.config)
        deadline = protocol.parse_deadline(req, self.default_deadline)
        plan = await self.scheduler.plan([cell], config)
        outcome = await self.scheduler.submit(cell, config, plan, deadline=deadline)
        return {
            "result": protocol.result_to_wire(
                outcome.result, include_arrays=bool(req.get("arrays"))
            ),
            "meta": {
                "cell": cell.name,
                "key": outcome.key,
                "cache_hit": outcome.cache_hit,
                "coalesced": outcome.coalesced,
                "seconds": round(outcome.seconds, 6),
            },
        }

    async def _handle_sweep(self, req: dict, send: Send) -> dict:
        cells, config = protocol.normalize_sweep_request(req, self.config)
        deadline = protocol.parse_deadline(req, self.default_deadline)
        rid = req.get("id")
        include_arrays = bool(req.get("arrays"))
        plan = await self.scheduler.plan(cells, config)
        total = len(cells)
        settled = 0

        async def one(index: int, cell) -> dict[str, Any]:
            nonlocal settled
            try:
                outcome = await self.scheduler.submit(
                    cell, config, plan, deadline=deadline
                )
                row: dict[str, Any] = {
                    "ok": True,
                    "label": cell.label,
                    "cell": cell.name,
                    "result": protocol.result_to_wire(
                        outcome.result, include_arrays=include_arrays
                    ),
                    "cache_hit": outcome.cache_hit,
                    "coalesced": outcome.coalesced,
                }
            except asyncio.CancelledError:
                raise
            except Overloaded as exc:
                self.stats.count_error(E_OVERLOADED)
                row = self._sweep_error(cell, E_OVERLOADED, exc)
            except DeadlineExceeded as exc:
                self.stats.count_error(E_TIMEOUT)
                row = self._sweep_error(cell, E_TIMEOUT, exc)
            except Exception as exc:  # noqa: BLE001
                self.stats.count_error(E_INTERNAL)
                row = self._sweep_error(cell, E_INTERNAL, exc)
            settled += 1
            await send(
                {
                    "id": rid,
                    "type": "event",
                    "event": "cell",
                    "cell": cell.name,
                    "ok": row["ok"],
                    "done": settled,
                    "total": total,
                }
            )
            return row

        # Fail-soft per cell: one overloaded/failed label never voids the
        # rows that did complete.  gather preserves declaration order.
        rows = await asyncio.gather(*(one(i, c) for i, c in enumerate(cells)))
        return {"rows": list(rows), "meta": {"cells_total": total}}

    @staticmethod
    def _sweep_error(cell, code: str, exc: Exception) -> dict[str, Any]:
        return {
            "ok": False,
            "label": cell.label,
            "cell": cell.name,
            "error": {"code": code, "message": str(exc)},
        }

    def _experiment_engine_pool(self):
        """Executor injected into ``run_cells`` for experiment requests.

        The single-node server reuses the scheduler's warm pool; the
        cluster router overrides this to fan cells out over the ring.
        """
        return self.scheduler.executor

    def _experiment_config(self, config: PaperConfig) -> PaperConfig:
        """Hook for subclasses to constrain experiment configs (router)."""
        return config

    async def _handle_experiment(self, req: dict, send: Send) -> dict:
        eid, config = protocol.normalize_experiment_request(req, self.config)
        config = self._experiment_config(config)
        deadline = protocol.parse_deadline(req, self.default_deadline)
        rid = req.get("id")
        loop = asyncio.get_running_loop()
        engine_pool = self._experiment_engine_pool()
        events: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()

        def hook(cell_name: str, done: int, total: int, cached: bool) -> None:
            # Called from the experiment thread (inside run_cells).
            loop.call_soon_threadsafe(
                events.put_nowait,
                {
                    "id": rid,
                    "type": "event",
                    "event": "cell",
                    "cell": cell_name,
                    "cached": cached,
                    "done": done,
                    "total": total,
                },
            )

        def run_blocking():
            from ..experiments import run_experiment

            # Stream cell completions and reuse the scheduler's warm pool
            # for the figure's own cell grid.
            with progress_scope(hook), engine_pool_scope(engine_pool):
                return run_experiment(eid, config)

        async def pump() -> None:
            while True:
                event = await events.get()
                if event is None:
                    return
                with contextlib.suppress(ConnectionError):
                    await send(event)

        pump_task = asyncio.create_task(pump())
        try:
            fut = loop.run_in_executor(self._experiment_pool, run_blocking)
            if deadline is not None:
                try:
                    result = await asyncio.wait_for(asyncio.shield(fut), deadline)
                except asyncio.TimeoutError:
                    self.stats.deadline_timeouts += 1
                    raise DeadlineExceeded(
                        f"deadline of {deadline:g}s elapsed running {eid}"
                    ) from None
            else:
                result = await fut
        except BaseException:
            pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump_task
            raise
        # Normal completion: every hook event was enqueued on the loop before
        # the executor future resolved (FIFO call_soon_threadsafe), so the
        # sentinel lands after them and the pump flushes everything before
        # the terminal result frame goes out.
        events.put_nowait(None)
        await pump_task
        engine_stats = getattr(result, "engine_stats", None) or {}
        self.stats.families_batched += int(engine_stats.get("families_batched", 0))
        self.stats.cells_batched += int(engine_stats.get("cells_batched", 0))
        return {
            "experiment": protocol.experiment_result_to_wire(result),
            "meta": {"experiment": eid},
        }
