"""MiBench ``bitcount`` — population counts by seven methods.

A sequential scan of an integer array, each element counted by a rotation
of counting strategies (shift loop, Kernighan clear-lowest, 4-bit and 8-bit
table lookups), as the original benchmark's function-pointer loop does.
Small hot tables plus a uniform array sweep: the paper measures this as one
of the most uniform workloads with ~zero gain from any technique.
"""

from __future__ import annotations

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["BitcountWorkload"]


@register_workload
class BitcountWorkload(Workload):
    name = "bitcount"
    suite = "mibench"
    description = "Population count of random words via multiple methods"
    access_pattern = "sequential word scan + tiny hot lookup tables"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(24_000, scale, minimum=32)
        data = m.space.heap_array(4, n, "words")
        tbl4 = m.space.static_array(1, 16, "nibble_table")
        tbl8 = m.space.static_array(1, 256, "byte_table")
        fn_table = m.space.static_array(8, 4, "method_ptrs")
        words = m.rng.integers(0, 1 << 32, size=n, dtype=int)
        nib = [bin(i).count("1") for i in range(16)]
        byt = [bin(i).count("1") for i in range(256)]
        frame = m.space.push_frame(64)
        total_slot = frame.local("total")
        total = 0
        for i in range(n):
            m.load_elem(data, i)
            x = int(words[i])
            method = i & 3
            m.load_elem(fn_table, method)
            if method == 0:  # shift-and-mask loop (bounded unroll)
                cnt = 0
                y = x
                while y:
                    cnt += y & 1
                    y >>= 1
            elif method == 1:  # Kernighan
                cnt = 0
                y = x
                while y:
                    y &= y - 1
                    cnt += 1
            elif method == 2:  # 4-bit table
                cnt = 0
                for shift in range(0, 32, 4):
                    m.load_elem(tbl4, (x >> shift) & 0xF)
                    cnt += nib[(x >> shift) & 0xF]
            else:  # 8-bit table
                cnt = 0
                for shift in range(0, 32, 8):
                    m.load_elem(tbl8, (x >> shift) & 0xFF)
                    cnt += byt[(x >> shift) & 0xFF]
            total += cnt
            m.store(total_slot)
        m.space.pop_frame()
        m.builder.meta["total_bits"] = total
