"""Ablation: SMT interleaving discipline.

The M-Sim substitution argument (DESIGN.md §2) claims the Figure-13 effect
is robust to *how* the threads' references interleave.  This bench runs one
conflict-heavy mix under round-robin, randomised and quantum-burst
interleavings and shows the per-thread-indexing gain survives all three.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing
from repro.core.selector import ThreadSchemeTable
from repro.multithread import SMTSharedCache, simulate_smt
from repro.trace import block_interleave, random_interleave, round_robin
from repro.workloads import get_workload


def test_interleaving_robustness(benchmark, config):
    g = config.geometry
    per_thread = config.ref_limit // 2
    t0 = get_workload("fft").generate(seed=config.seed, ref_limit=per_thread)
    t1 = get_workload("susan").generate(seed=config.seed + 1, ref_limit=per_thread)

    disciplines = {
        "round_robin": lambda: round_robin([t0, t1]),
        "random": lambda: random_interleave([t0, t1], seed=3),
        "quantum64": lambda: block_interleave([t0, t1], quantum=64),
        "quantum1024": lambda: block_interleave([t0, t1], quantum=1024),
    }

    def run():
        rows = {}
        for name, make in disciplines.items():
            mix = make()
            base = simulate_smt(
                SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)] * 2)), mix
            )
            multi = simulate_smt(
                SMTSharedCache(
                    g,
                    ThreadSchemeTable(
                        [OddMultiplierIndexing(g, 9), OddMultiplierIndexing(g, 31)]
                    ),
                ),
                mix,
            )
            rows[name] = 100.0 * (base.misses - multi.misses) / max(base.misses, 1)
        return rows

    rows = run_once(benchmark, run)
    print()
    for name, reduction in rows.items():
        print(f"{name:12s} miss reduction {reduction:+.1f}%")
        assert reduction > 10.0, f"{name}: per-thread indexing gain vanished"
