"""Recorder and stdio-model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import Recorder, TraceComplete, record


class TestRecorder:
    def test_load_store_recorded(self):
        m = Recorder("t")
        m.load(0x100)
        m.store(0x200)
        t = m.build()
        assert t.addresses.tolist() == [0x100, 0x200]
        assert t.is_write.tolist() == [False, True]

    def test_array_helpers(self):
        m = Recorder("t")
        arr = m.space.heap_array(8, 4, "a")
        m.load_elem(arr, 2)
        m.store_field(arr, 1, 4)
        t = m.build()
        assert t.addresses.tolist() == [arr.addr(2), arr.addr(1) + 4]

    def test_ref_limit_raises(self):
        # Scalar mode raises promptly at the limit event.
        m = Recorder("t", ref_limit=3, bulk=False)
        m.load(1)
        m.load(2)
        with pytest.raises(TraceComplete):
            m.load(3)

    def test_ref_limit_bulk_deferred(self):
        # Bulk mode defers scalar verbs; the cut is applied at flush time
        # and the built trace is bounded identically.
        m = Recorder("t", ref_limit=3)
        for a in range(5):
            m.load(a)
        t = m.build()
        assert len(t) == 3
        assert t.addresses.tolist() == [0, 1, 2]

    def test_stream_respects_limit(self):
        m = Recorder("t", ref_limit=5)
        with pytest.raises(TraceComplete):
            m.load_stream(np.arange(10, dtype=np.uint64))
        assert len(m.build()) == 5

    def test_rng_seeded(self):
        a = Recorder("t", seed=5).rng.integers(0, 1 << 30)
        b = Recorder("t", seed=5).rng.integers(0, 1 << 30)
        assert a == b


class TestRecordFunction:
    def test_kernel_truncated_at_limit(self):
        def kernel(m):
            for i in range(1000):
                m.load(i * 8)

        t = record(kernel, "k", ref_limit=100)
        assert len(t) == 100

    def test_kernel_completes_under_limit(self):
        def kernel(m):
            m.load(1)
            m.builder.meta["done"] = True

        t = record(kernel, "k", ref_limit=100)
        assert len(t) == 1
        assert t.meta["done"]

    def test_thread_tagging(self):
        t = record(lambda m: m.load(1), "k", thread=3)
        assert t.thread.tolist() == [3]

    def test_determinism(self):
        def kernel(m):
            for _ in range(50):
                m.load(int(m.rng.integers(0, 1 << 20)))

        a = record(kernel, "k", seed=9)
        b = record(kernel, "k", seed=9)
        np.testing.assert_array_equal(a.addresses, b.addresses)


class TestStdio:
    def test_printf_emits_references(self):
        m = Recorder("t")
        m.printf(32)
        assert len(m.build()) > 0

    def test_buffer_flush_on_wrap(self):
        m = Recorder("t")
        # Fill the 4 KiB buffer: the flush re-reads it (loads appear).
        for _ in range(200):
            m.printf(32)
        t = m.build()
        assert t.is_write.sum() < len(t)  # flush loads present
        assert (~t.is_write).sum() > 200

    def test_printf_balances_stack(self):
        m = Recorder("t")
        depth = m.space.stack_depth
        m.printf()
        assert m.space.stack_depth == depth
