"""Workloads: executable kernels that emit the memory traces the paper's
benchmarks produced under SimpleScalar.

Importing :mod:`repro.workloads` registers every MiBench and SPEC-like
workload; look them up with :func:`get_workload`.
"""

from . import hpc, mibench, spec
from .base import (
    DEFAULT_REF_LIMIT,
    WORKLOAD_REGISTRY,
    Workload,
    available_workloads,
    get_workload,
    register_workload,
)
from .hpc import HPC_ORDER
from .mibench import MIBENCH_ORDER
from .spec import SPEC_ORDER

__all__ = [
    "Workload",
    "register_workload",
    "get_workload",
    "available_workloads",
    "WORKLOAD_REGISTRY",
    "DEFAULT_REF_LIMIT",
    "MIBENCH_ORDER",
    "SPEC_ORDER",
    "HPC_ORDER",
    "mibench",
    "spec",
    "hpc",
]
