"""Figures 9-12 — kurtosis and skewness of per-set *misses*.

The paper converts per-set miss counts to distributions and reports the
percentage increase in kurtosis (Figs. 9 and 11) and skewness (Figs. 10 and
12) relative to the conventional direct-mapped baseline — for the indexing
schemes (9/10) and the programmable-associativity schemes (11/12).
Negative = more uniform misses.

Paper shape: the indexing schemes are mixed (some large *increases* in
non-uniformity); the programmable-associativity schemes reduce both moments
strongly.

These figures reuse the per-set miss arrays already computed by the fig4
and fig6 runners (stored in their ``arrays``), so each pair of figures
costs one underlying sweep.
"""

from __future__ import annotations

import numpy as np

from ..core.uniformity import kurtosis, percent_increase, skewness
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .fig04_indexing_missrate import INDEXING_COLUMNS, run_fig04
from .fig06_progassoc_missrate import PROGASSOC_COLUMNS, run_fig06
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig09", "run_fig10", "run_fig11", "run_fig12"]


def _moment_result(
    source, columns: list[str], experiment_id: str, moment_name: str, moment_fn
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"% increase in {moment_name} of per-set misses vs conventional",
        columns=columns,
    )
    for bench in MIBENCH_ORDER:
        base = np.asarray(source.arrays[f"{bench}/baseline/misses_per_set"])
        base_m = moment_fn(base)
        row = {}
        for col in columns:
            misses = np.asarray(source.arrays[f"{bench}/{col}/misses_per_set"])
            row[col] = percent_increase(moment_fn(misses), base_m)
        result.add_row(bench, row)
    result.add_average_row()
    return result


@register_experiment("fig9")
def run_fig09(config: PaperConfig) -> ExperimentResult:
    src = run_fig04(config)
    res = _moment_result(src, INDEXING_COLUMNS, "fig9", "kurtosis", kurtosis)
    res.note("paper shape: mixed; several schemes sharply increase miss kurtosis")
    return res


@register_experiment("fig10")
def run_fig10(config: PaperConfig) -> ExperimentResult:
    src = run_fig04(config)
    res = _moment_result(src, INDEXING_COLUMNS, "fig10", "skewness", skewness)
    res.note("paper shape: mixed; improvements not significant, some regressions")
    return res


@register_experiment("fig11")
def run_fig11(config: PaperConfig) -> ExperimentResult:
    src = run_fig06(config)
    res = _moment_result(src, PROGASSOC_COLUMNS, "fig11", "kurtosis", kurtosis)
    res.note("paper shape: programmable associativity strongly reduces kurtosis")
    return res


@register_experiment("fig12")
def run_fig12(config: PaperConfig) -> ExperimentResult:
    src = run_fig06(config)
    res = _moment_result(src, PROGASSOC_COLUMNS, "fig12", "skewness", skewness)
    res.note("paper shape: programmable associativity reduces skewness (negative bars)")
    return res


from .warm import provides_traces, workload_spec  # noqa: E402


def _moment_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]


for _eid in ("fig9", "fig10", "fig11", "fig12"):
    provides_traces(_eid)(_moment_traces)
