"""Memory-reference traces.

A :class:`Trace` is the package's universal currency: workloads produce one,
the simulator consumes one.  Internally it is a struct-of-arrays —
``addresses`` (uint64 byte addresses), ``is_write`` (bool) and ``thread``
(int16) — because the simulator's fast paths are vectorised and a list of
event objects would defeat them (see the HPC guides: keep hot data in NumPy,
loop in C).

Traces are immutable once built; construction goes through either the array
constructor or :class:`TraceBuilder`, which buffers appends in chunks to
avoid quadratic growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

__all__ = ["Trace", "TraceBuilder", "MemoryAccess"]


@dataclass(frozen=True)
class MemoryAccess:
    """One reference, for readable iteration and tests (not the hot path)."""

    address: int
    is_write: bool = False
    thread: int = 0


class Trace:
    """An immutable sequence of memory references."""

    def __init__(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray | None = None,
        thread: np.ndarray | None = None,
        name: str = "",
        meta: dict[str, Any] | None = None,
    ):
        addresses = np.ascontiguousarray(addresses, dtype=np.uint64)
        if addresses.ndim != 1:
            raise ValueError("addresses must be 1-D")
        n = addresses.size
        if is_write is None:
            is_write = np.zeros(n, dtype=bool)
        else:
            is_write = np.ascontiguousarray(is_write, dtype=bool)
        if thread is None:
            thread = np.zeros(n, dtype=np.int16)
        else:
            thread = np.ascontiguousarray(thread, dtype=np.int16)
        if is_write.shape != (n,) or thread.shape != (n,):
            raise ValueError("is_write/thread length must match addresses")
        self.addresses = addresses
        self.is_write = is_write
        self.thread = thread
        self.name = name
        self.meta = dict(meta or {})
        for arr in (self.addresses, self.is_write, self.thread):
            arr.setflags(write=False)

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for a, w, t in zip(self.addresses, self.is_write, self.thread):
            yield MemoryAccess(int(a), bool(w), int(t))

    def __getitem__(self, item: slice) -> "Trace":
        if not isinstance(item, slice):
            raise TypeError("Trace supports slice indexing only")
        return Trace(
            self.addresses[item].copy(),
            self.is_write[item].copy(),
            self.thread[item].copy(),
            name=self.name,
            meta=self.meta,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.name or 'unnamed'}: {len(self)} refs, {self.num_threads} thread(s)>"

    # -- derived ------------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return int(self.thread.max()) + 1 if len(self) else 0

    def blocks(self, offset_bits: int) -> np.ndarray:
        """Block addresses under a given line size."""
        return self.addresses >> np.uint64(offset_bits)

    def unique_addresses(self) -> np.ndarray:
        return np.unique(self.addresses)

    def unique_blocks(self, offset_bits: int) -> np.ndarray:
        return np.unique(self.blocks(offset_bits))

    def footprint_bytes(self, offset_bits: int) -> int:
        """Touched memory at line granularity."""
        return int(self.unique_blocks(offset_bits).size) << offset_bits

    def write_fraction(self) -> float:
        return float(self.is_write.mean()) if len(self) else 0.0

    def for_thread(self, thread: int) -> "Trace":
        mask = self.thread == thread
        return Trace(
            self.addresses[mask].copy(),
            self.is_write[mask].copy(),
            np.zeros(int(mask.sum()), dtype=np.int16),
            name=f"{self.name}[t{thread}]",
            meta=self.meta,
        )

    def with_name(self, name: str) -> "Trace":
        return Trace(self.addresses, self.is_write, self.thread, name=name, meta=self.meta)

    def head(self, n: int) -> "Trace":
        return self[:n]

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.is_write, other.is_write]),
            np.concatenate([self.thread, other.thread]),
            name=f"{self.name}+{other.name}",
        )


class TraceBuilder:
    """Chunked appender used by the workload recorder.

    Supports both the scalar hot path (``append``, one reference per call)
    and the bulk-emission path (``extend``, thousands of references per
    call, with either one shared write flag or a per-event flag array).
    ``thread`` is a fill value applied once at :meth:`build` time — the
    builder owns thread tagging so :func:`~repro.trace.recorder.record`
    never has to copy-rebuild a finished trace just to stamp thread ids.
    """

    CHUNK = 1 << 16

    def __init__(
        self, name: str = "", meta: dict[str, Any] | None = None, thread: int = 0
    ):
        self.name = name
        self.meta = dict(meta or {})
        self.thread = int(thread)
        self._chunks_addr: list[np.ndarray] = []
        self._chunks_write: list[np.ndarray] = []
        self._addr = np.empty(self.CHUNK, dtype=np.uint64)
        self._write = np.empty(self.CHUNK, dtype=bool)
        self._fill = 0
        self._total = 0

    def append(self, address: int, is_write: bool = False) -> None:
        if self._fill == self.CHUNK:
            self._flush_chunk()
        self._addr[self._fill] = address
        self._write[self._fill] = is_write
        self._fill += 1
        self._total += 1

    def extend(
        self, addresses: np.ndarray, is_write: "np.ndarray | bool" = False
    ) -> None:
        """Bulk append (used by vectorised workload phases).

        ``is_write`` may be a scalar flag (whole block is loads or stores)
        or a boolean array of per-event flags aligned with ``addresses`` —
        the representation interleaved load/store patterns need.
        """
        self._flush_chunk()
        addresses = np.ascontiguousarray(addresses, dtype=np.uint64).ravel()
        if np.ndim(is_write) == 0:
            writes = np.full(addresses.size, bool(is_write), dtype=bool)
        else:
            writes = np.ascontiguousarray(is_write, dtype=bool).ravel()
            if writes.size != addresses.size:
                raise ValueError(
                    f"per-event write flags ({writes.size}) must match "
                    f"addresses ({addresses.size})"
                )
        self._chunks_addr.append(addresses)
        self._chunks_write.append(writes)
        self._total += addresses.size

    def _flush_chunk(self) -> None:
        if self._fill:
            self._chunks_addr.append(self._addr[: self._fill].copy())
            self._chunks_write.append(self._write[: self._fill].copy())
            self._fill = 0

    def __len__(self) -> int:
        return self._total

    def build(self) -> Trace:
        self._flush_chunk()
        if self._chunks_addr:
            addresses = np.concatenate(self._chunks_addr)
            writes = np.concatenate(self._chunks_write)
        else:
            addresses = np.empty(0, dtype=np.uint64)
            writes = np.empty(0, dtype=bool)
        thread = (
            np.full(addresses.size, self.thread, dtype=np.int16)
            if self.thread
            else None
        )
        return Trace(addresses, writes, thread, name=self.name, meta=self.meta)
