"""Experiment configuration (the paper's Section IV setup).

One dataclass carries everything the figure reproductions need: the cache
geometry (32 KiB direct-mapped L1, 32 B lines, 1024 sets), the timing model,
adaptive-cache table fractions, the B-cache operating point, trace lengths
and the on-disk trace cache location.  ``PaperConfig()`` is the paper's
configuration; tests and benches construct smaller variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from ..core.address import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY, CacheGeometry
from ..core.amat import TimingModel

__all__ = ["PaperConfig", "MULTITHREAD_MIXES_FIG13", "MULTITHREAD_MIXES_FIG14"]

#: Thread mixes of the paper's Figure 13 (names joined by underscores there).
MULTITHREAD_MIXES_FIG13: list[tuple[str, ...]] = [
    ("bitcount", "adpcm"),
    ("bzip2", "libquantum"),
    ("fft", "susan"),
    ("gromacs", "namd"),
    ("milc", "namd"),
    ("qsort", "basicmath"),
    ("qsort", "patricia"),
    ("fft", "basicmath", "patricia", "susan"),
    ("susan", "bitcount", "adpcm", "patricia"),
]

#: Thread mixes of the paper's Figure 14.
MULTITHREAD_MIXES_FIG14: list[tuple[str, ...]] = [
    ("bitcount", "adpcm"),
    ("fft", "susan"),
    ("qsort", "basicmath"),
    ("qsort", "fft"),
    ("qsort", "patricia"),
    ("libquantum", "milc"),
    ("milc", "namd"),
    ("gromacs", "namd"),
    ("bzip2", "libquantum"),
    ("fft", "basicmath", "patricia", "susan"),
    ("susan", "bitcount", "adpcm", "patricia"),
]


@dataclass(frozen=True)
class PaperConfig:
    """All knobs of the reproduction, defaulted to the paper's values."""

    geometry: CacheGeometry = PAPER_L1_GEOMETRY
    l2_geometry: CacheGeometry = PAPER_L2_GEOMETRY
    timing: TimingModel = field(default_factory=TimingModel)

    # Adaptive cache (Section IV: SHT 3/8, OUT 4/16 of the sets).
    sht_fraction: float = 3 / 8
    out_fraction: float = 4 / 16

    # B-cache operating point (see DESIGN.md §5.1).
    bcache_mapping_factor: int = 2
    bcache_bas: int = 2

    # Victim-cache comparator.
    victim_lines: int = 8

    #: Stream-buffer shape for aux-structure cells (``auxsweep`` /
    #: ``ext-aux``): number of prefetch queues and the allocate-on-miss
    #: policy (``"miss"`` = allocate only on misses no structure serviced,
    #: ``"always"`` = on every main-array miss).  Outcome-changing, so
    #: ``make_cell`` folds both into the params (hence result-cache keys)
    #: of every sb-containing aux cell; vc/mc-only cells ignore them.
    aux_streams: int = 4
    aux_allocate: str = "miss"

    #: Column-associative swap policy (Agarwal & Pudar): when ``True`` a
    #: conventional-location block is never displaced into its rehash
    #: position by an incoming rehash miss.  Changes outcomes, so it is
    #: part of every result-cache key that simulates a colassoc cache.
    protect_conventional: bool = True

    # Odd multipliers: the recommended set; SMT threads take them in order.
    odd_multiplier: int = 9
    smt_multipliers: tuple[int, ...] = (9, 31, 21, 61)

    # Trace generation.
    ref_limit: int = 120_000
    seed: int = 2011  # the venue year; any fixed seed reproduces bit-for-bit
    workload_scale: float = 1.0
    #: Trainable schemes (Givargis/Patel) are fitted on a *profiling run*
    #: with this seed offset — the paper's Figure-5 flow profiles off-line
    #: on a sample input, then runs the chosen index on the real input.
    #: Set to 0 to train on the evaluation trace itself.
    profile_seed_offset: int = 77

    #: Seed of the ``random`` replacement policy's generator (the policy
    #: axis of ``ext-policy`` and ``policysweep`` cells).  Changes outcomes
    #: for random-policy cells, so ``make_cell`` folds it into those cells'
    #: params (hence their result-cache keys); cells of every other policy
    #: ignore it.
    policy_seed: int = 0

    # On-disk trace cache (regeneration is the slow part of a sweep).
    trace_cache_dir: Path = field(default_factory=lambda: Path(".trace_cache"))
    #: Byte budget of the process-wide trace arena (the bounded LRU of
    #: opened/mapped traces every trace-path consumer shares — see
    #: :mod:`repro.trace.arena`).  Bounds how much mapped trace data a
    #: long-lived process (``repro serve``, cluster workers, pool
    #: workers) retains; raw-format entries are mapped zero-copy, so the
    #: budget is address-space/worst-case-residency, not guaranteed RSS.
    #: Execution knob only (like ``jobs``/``engine``): results are
    #: bit-identical at any budget, so it is *not* part of cache keys.
    trace_arena_bytes: int = 1 << 30

    # -- parallel experiment engine ------------------------------------------------
    #: Worker processes for experiment grids: 1 = deterministic in-process
    #: sequential fallback (the default for tests), 0 = all cores
    #: (``os.cpu_count()``), N = exactly N.  Parallel runs are bit-identical
    #: to sequential ones.
    jobs: int = 1
    #: Memoize per-cell SimulationResults on disk (content-addressed by
    #: trace fingerprint + geometry + scheme params + engine version).
    use_result_cache: bool = True
    #: Result-cache root; ``None`` → ``<trace_cache_dir>/results`` so tests
    #: pointing the trace cache at a tmp dir stay hermetic automatically.
    result_cache_dir: Path | None = None
    #: Result-store backend: ``"local"`` (today's private on-disk cache) or
    #: ``"shared"`` (two-tier read-through/write-behind store rooted at
    #: ``shared_store_dir``, so warm results are cluster-visible — see
    #: :mod:`repro.experiments.engine.store`).  Execution-location knob
    #: only: keys and stored payloads are identical across backends, so it
    #: is *not* part of result-cache keys.
    result_store: str = "local"
    #: Cluster-visible results directory for ``result_store="shared"``
    #: (every node of one cluster points here; ``None`` elsewhere).
    shared_store_dir: Path | None = None
    #: Simulation-engine selection for cells with a vectorised fast path:
    #: ``"auto"`` picks the set-decomposed engines (fastsim/fastassoc) when
    #: available, ``"sequential"`` forces the reference loop.  Results are
    #: bit-identical either way, so this knob is *not* part of cache keys.
    engine: str = "auto"
    #: Batch provably-equivalent cells into *sweep families* (see
    #: :mod:`repro.experiments.engine.families`): same-mapping LRU cells of
    #: one workload share a single stack-distance pass (the Mattson axis)
    #: and remaining same-workload cells share one trace decode.  Results
    #: and result-cache keys are bit-identical either way — execution knob
    #: only, *not* part of cache keys (like ``jobs``/``engine``).  The
    #: Mattson axis additionally requires ``engine == "auto"``.  Surfaced
    #: as ``run --no-batch`` on the CLI.
    batch_sweeps: bool = True
    #: Per-cell wall-clock budget in seconds (``None`` = unlimited).  A cell
    #: exceeding it fails the run with a :class:`CellExecutionError` naming
    #: the (workload, scheme) pair instead of blocking forever — see
    #: ``run_cells``.  Execution knob only (like ``jobs``/``engine``): it
    #: never changes results, so it is *not* part of result-cache keys.
    #: Surfaced as ``--cell-timeout`` on the CLI and reused by the job
    #: server as its default per-request deadline.
    cell_timeout: float | None = None
    #: Load-generator knob: artificial per-cell service time in seconds,
    #: slept inside ``timed_execute_cell`` *before* simulating.  Makes a
    #: worker's capacity deterministic (capacity = slots / delay) so the
    #: cluster scaling bench and the kill-mid-burst smoke are
    #: machine-independent.  ``None``/0 (the default, and the only sane
    #: production value) is free.  Execution knob only — results are
    #: unchanged, so it is *not* part of result-cache keys.  Surfaced as
    #: ``serve --cell-delay``.
    cell_delay: float | None = None

    @property
    def result_cache_path(self) -> Path:
        if self.result_cache_dir is not None:
            return Path(self.result_cache_dir)
        return Path(self.trace_cache_dir) / "results"

    def scaled_down(self, ref_limit: int, scale: float | None = None) -> "PaperConfig":
        """A cheaper configuration for tests/benches (same semantics)."""
        return replace(
            self,
            ref_limit=ref_limit,
            workload_scale=scale if scale is not None else self.workload_scale,
        )
