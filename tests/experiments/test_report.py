"""ExperimentResult / rendering tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult, render_bars, render_table, sparkline


@pytest.fixture
def result() -> ExperimentResult:
    r = ExperimentResult("figX", "demo", columns=["A", "B"])
    r.add_row("bench1", {"A": 10.0, "B": -5.0})
    r.add_row("bench2", {"A": 30.0, "B": 15.0})
    return r


class TestExperimentResult:
    def test_undeclared_column_rejected(self, result):
        with pytest.raises(KeyError):
            result.add_row("x", {"C": 1.0})

    def test_average_row(self, result):
        result.add_average_row()
        assert result.value("Average", "A") == pytest.approx(20.0)
        assert result.value("Average", "B") == pytest.approx(5.0)

    def test_average_requires_rows(self):
        with pytest.raises(ValueError):
            ExperimentResult("f", "t", ["A"]).add_average_row()

    def test_column_excludes_average(self, result):
        result.add_average_row()
        col = result.column("A")
        assert "Average" not in col
        assert result.column("A", include_average=True)["Average"] == 20.0

    def test_notes(self, result):
        result.note("hello")
        assert "hello" in str(result)


class TestRendering:
    def test_table_contains_all_cells(self, result):
        text = render_table(result)
        for token in ("bench1", "bench2", "10.00", "-5.00"):
            assert token in text

    def test_markdown_table(self, result):
        md = result.to_markdown()
        assert md.startswith("### figX")
        assert "|" in md

    def test_missing_cell_rendered_as_dash(self):
        r = ExperimentResult("f", "t", ["A", "B"])
        r.add_row("x", {"A": 1.0})
        assert "-" in render_table(r)

    def test_huge_values_scientific(self):
        r = ExperimentResult("f", "t", ["A"])
        r.add_row("x", {"A": -5e8})
        assert "e+" in render_table(r).lower() or "e-" in render_table(r).lower()

    def test_bars(self, result):
        bars = render_bars(result, "A")
        assert "bench1" in bars and "+" in bars

    def test_bars_empty(self):
        r = ExperimentResult("f", "t", ["A"])
        assert render_bars(r, "A") == "(no data)"


class TestSparkline:
    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_length_capped(self):
        assert len(sparkline(np.arange(1000), width=64)) == 64

    def test_peak_visible_after_downsample(self):
        x = np.zeros(1000)
        x[500] = 100
        assert "█" in sparkline(x, width=50)

    def test_all_zero(self):
        assert set(sparkline(np.zeros(10))) == {" "}
