"""Extension experiment: dynamic vs static scheme selection.

The paper's conclusion calls indexing schemes "static; they do not adjust
dynamically to a given application's memory access pattern".  This
experiment runs the :class:`~repro.core.dynamic.DynamicIndexCache` (on-line
phase detection + scheme switching with flush costs) against every static
choice on (a) the MiBench workloads as-is and (b) phase-concatenated pairs
(one conflict-friendly workload followed by one conflict-hostile one), where
no single static scheme can win both halves.

Columns report % miss reduction vs static-modulo.
"""

from __future__ import annotations

from ..core.dynamic import DynamicIndexCache
from ..core.indexing import (
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from ..core.simulator import simulate, simulate_indexing
from ..core.uniformity import percent_reduction
from .config import PaperConfig
from .report import ExperimentResult
from .runner import register_experiment, workload_trace

__all__ = ["run_ext_dynamic"]

#: (phase A, phase B) concatenations; A and B prefer different schemes.
PHASE_PAIRS = [
    ("crc", "fft"),
    ("susan", "fft"),
    ("adpcm", "calculix"),
    ("sha", "astar"),
]


@register_experiment("ext-dynamic")
def run_ext_dynamic(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="ext-dynamic",
        title="% miss reduction vs static modulo: static schemes vs dynamic switching",
        columns=["best_static", "static_xor", "static_odd", "dynamic"],
    )
    for a, b in PHASE_PAIRS:
        trace = workload_trace(a, config).concat(workload_trace(b, config))
        base = simulate_indexing(ModuloIndexing(g), trace, g)
        statics = {
            "static_xor": simulate_indexing(XorIndexing(g), trace, g).misses,
            "static_odd": simulate_indexing(
                OddMultiplierIndexing(g, config.odd_multiplier), trace, g
            ).misses,
            "static_prime": simulate_indexing(PrimeModuloIndexing(g), trace, g).misses,
        }
        dynamic_cache = DynamicIndexCache(
            g,
            [XorIndexing(g), OddMultiplierIndexing(g, config.odd_multiplier), PrimeModuloIndexing(g)],
        )
        dynamic = simulate(dynamic_cache, trace).misses
        row = {
            "best_static": percent_reduction(min(statics.values()), base.misses),
            "static_xor": percent_reduction(statics["static_xor"], base.misses),
            "static_odd": percent_reduction(statics["static_odd"], base.misses),
            "dynamic": percent_reduction(dynamic, base.misses),
        }
        result.add_row(f"{a}->{b}", row)
        result.arrays[f"{a}->{b}/switches"] = dynamic_cache.switches
    result.add_average_row()
    result.note("dynamic pays real flush costs per switch; switches logged in arrays")
    result.note("implements the paper's 'adjust dynamically' future-work remark")
    result.note(
        "the dynamic cache approaches the best per-pair static choice without "
        "any off-line profiling, and beats every fixed wrong choice"
    )
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-dynamic")
def ext_dynamic_traces(config: PaperConfig):
    names = dict.fromkeys(n for pair in PHASE_PAIRS for n in pair)
    return [workload_spec(n, config) for n in names]
