"""Address decomposition and cache geometry.

Every indexing scheme and cache model in this package consumes memory
addresses through a :class:`CacheGeometry`, which fixes the classic
``tag | index | byte-offset`` decomposition used by the paper (its Figure 2):

* an address space of ``2**address_bits`` bytes,
* a cache of ``2**n`` lines of ``2**b`` bytes grouped into sets of ``k``
  ways, giving ``m = n - log2(k)`` index bits.

All helpers come in scalar *and* vectorised (NumPy) flavours: the vectorised
forms operate on ``uint64`` arrays and are the fast path used by the
trace-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CacheGeometry",
    "is_power_of_two",
    "ilog2",
    "extract_bits",
    "gather_bits",
    "gather_bits_vec",
]


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two; raises ValueError otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def extract_bits(value: int, low: int, count: int) -> int:
    """Extract ``count`` bits of ``value`` starting at bit ``low``."""
    if count <= 0:
        return 0
    return (value >> low) & ((1 << count) - 1)


def gather_bits(value: int, positions: tuple[int, ...]) -> int:
    """Pack the bits of ``value`` at ``positions`` into an integer.

    ``positions[0]`` becomes the least-significant bit of the result.  Used by
    the Givargis and Patel bit-selection indexing schemes, where the index is
    the concatenation of arbitrarily chosen address bits.
    """
    out = 0
    for i, pos in enumerate(positions):
        out |= ((value >> pos) & 1) << i
    return out


def gather_bits_vec(values: np.ndarray, positions: tuple[int, ...]) -> np.ndarray:
    """Vectorised :func:`gather_bits` over a ``uint64`` array."""
    values = np.asarray(values, dtype=np.uint64)
    out = np.zeros_like(values)
    for i, pos in enumerate(positions):
        out |= ((values >> np.uint64(pos)) & np.uint64(1)) << np.uint64(i)
    return out


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity; must be a power of two.
    line_bytes:
        Bytes per cache line (block); power of two.
    ways:
        Set associativity ``k``; power of two (1 = direct mapped).
    address_bits:
        Width of the modelled (virtual) address, default 32 as in the paper's
        Alpha-compiled binaries truncated to the simulated address space.

    Derived attributes cover every quantity the paper's Section 1.1 defines:
    ``num_lines`` (2^n), ``num_sets`` (2^m), ``offset_bits`` (b),
    ``index_bits`` (m) and ``tag_bits`` (N - m - b).
    """

    capacity_bytes: int
    line_bytes: int
    ways: int = 1
    address_bits: int = 32

    num_lines: int = field(init=False)
    num_sets: int = field(init=False)
    offset_bits: int = field(init=False)
    index_bits: int = field(init=False)
    tag_bits: int = field(init=False)

    def __post_init__(self) -> None:
        for name in ("capacity_bytes", "line_bytes", "ways"):
            if not is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two, got {getattr(self, name)}")
        if self.line_bytes > self.capacity_bytes:
            raise ValueError("line_bytes exceeds capacity_bytes")
        num_lines = self.capacity_bytes // self.line_bytes
        if self.ways > num_lines:
            raise ValueError("associativity exceeds the number of lines")
        object.__setattr__(self, "num_lines", num_lines)
        object.__setattr__(self, "num_sets", num_lines // self.ways)
        object.__setattr__(self, "offset_bits", ilog2(self.line_bytes))
        object.__setattr__(self, "index_bits", ilog2(self.num_sets))
        tag_bits = self.address_bits - self.index_bits - self.offset_bits
        if tag_bits < 0:
            raise ValueError("address_bits too small for this geometry")
        object.__setattr__(self, "tag_bits", tag_bits)

    # -- scalar field extraction ------------------------------------------------

    def block_address(self, address: int) -> int:
        """Drop the byte offset: the line-granular address."""
        return address >> self.offset_bits

    def offset_of(self, address: int) -> int:
        return address & (self.line_bytes - 1)

    def index_of(self, address: int) -> int:
        """Conventional modulo-2^m set index (paper Figure 2)."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag_of(self, address: int) -> int:
        return address >> (self.offset_bits + self.index_bits)

    def rebuild_address(self, tag: int, index: int, offset: int = 0) -> int:
        """Inverse of the (tag, index, offset) decomposition."""
        return (tag << (self.offset_bits + self.index_bits)) | (index << self.offset_bits) | offset

    # -- vectorised field extraction --------------------------------------------

    def block_addresses(self, addresses: np.ndarray) -> np.ndarray:
        return np.asarray(addresses, dtype=np.uint64) >> np.uint64(self.offset_bits)

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        blocks = self.block_addresses(addresses)
        return (blocks & np.uint64(self.num_sets - 1)).astype(np.int64)

    def tags_of(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.uint64)
        return addresses >> np.uint64(self.offset_bits + self.index_bits)

    # -- convenience -------------------------------------------------------------

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Same capacity/line size with a different associativity."""
        return CacheGeometry(self.capacity_bytes, self.line_bytes, ways, self.address_bits)

    def with_fixed_sets(self, ways: int) -> "CacheGeometry":
        """Same set count/line size with a different associativity.

        Capacity scales with ``ways`` so ``num_sets`` (and therefore the
        set-index mapping) is unchanged — the Mattson associativity-sweep
        geometry: every ``ways`` shares one per-access stack-distance
        stream, so one pass answers the whole sweep.  Contrast
        :meth:`with_ways`, which holds capacity fixed and *changes* the
        mapping.
        """
        return CacheGeometry(
            self.num_sets * ways * self.line_bytes,
            self.line_bytes,
            ways,
            self.address_bits,
        )

    def describe(self) -> str:
        return (
            f"{self.capacity_bytes // 1024}KiB, {self.line_bytes}B lines, "
            f"{self.ways}-way, {self.num_sets} sets "
            f"(tag/index/offset = {self.tag_bits}/{self.index_bits}/{self.offset_bits} bits)"
        )


#: The paper's L1 data-cache configuration (Section IV): 32 KiB direct mapped,
#: 32-byte lines, 1024 sets, 10 index bits.
PAPER_L1_GEOMETRY = CacheGeometry(capacity_bytes=32 * 1024, line_bytes=32, ways=1)

#: The paper's unified L2: 256 KiB, LRU.  The paper does not state the L2
#: associativity; 8-way is the conventional choice for that era.
PAPER_L2_GEOMETRY = CacheGeometry(capacity_bytes=256 * 1024, line_bytes=32, ways=8)

__all__ += ["PAPER_L1_GEOMETRY", "PAPER_L2_GEOMETRY"]
