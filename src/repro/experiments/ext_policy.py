"""Extension experiment: replacement policy × indexing scheme grid.

The paper's remedies all target the *placement* side of non-uniformity —
where a block lands.  This experiment probes the *retention* side: for
each MiBench workload and for both a conventional modulo index and the
XOR (bitwise-XOR folding) index, the miss rate of a 4-way cache under
every registered replacement policy (LRU, FIFO, PLRU, MRU, LFU and
seeded random).  Per-cell miss-distribution Gini coefficients land in
``result.arrays`` so the figure can show whether a smarter policy also
*evens out* the per-set miss pressure or merely lowers its total.

Every row's cells differ only in ``policy``, which is exactly the
engine's "policy" sweep-family condition: one trace decode, one index
computation and one set-decomposition pass answer all six columns
(:func:`repro.core.fastpolicy.simulate_policy_sweep`) when batching is
enabled, and cell by cell when it is not — bit-identical either way.
This makes ext-policy both a figure and the end-to-end canary for the
policy-axis fast path (``benchmarks/test_policy_kernel_bench.py``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.uniformity import uniformity_report
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_ext_policy", "EXT_POLICY_COLUMNS", "EXT_POLICY_SCHEMES"]

#: Replacement policies of the sweep (the columns), reference first.
EXT_POLICY_COLUMNS = ["lru", "fifo", "plru", "mru", "lfu", "random"]

#: Indexing schemes crossed with the policies (one row per scheme).
EXT_POLICY_SCHEMES = ["modulo", "xor"]


@register_experiment("ext-policy")
def run_ext_policy(config: PaperConfig) -> ExperimentResult:
    # 4-way point: associative enough that policies differ, small enough
    # that PLRU stays a power of two and the paper's set count is kept.
    pol_config = replace(config, geometry=config.geometry.with_ways(4))
    result = ExperimentResult(
        experiment_id="ext-policy",
        title="Replacement policy × indexing scheme: 4-way miss rate",
        columns=EXT_POLICY_COLUMNS,
    )
    cells = [
        make_cell("policysweep", bench, f"{scheme}:{policy}", pol_config)
        for bench in MIBENCH_ORDER
        for scheme in EXT_POLICY_SCHEMES
        for policy in EXT_POLICY_COLUMNS
    ]
    sims, stats = ExperimentEngine(pol_config).run(cells)
    for bench in MIBENCH_ORDER:
        for scheme in EXT_POLICY_SCHEMES:
            row = {}
            for policy in EXT_POLICY_COLUMNS:
                sim = sims[(bench, f"{scheme}:{policy}")]
                row[policy] = sim.miss_rate
                result.arrays[f"{bench}/{scheme}/{policy}/miss_gini"] = np.array(
                    [uniformity_report(sim.slot_misses).gini]
                )
            result.add_row(f"{bench}/{scheme}", row)
    result.add_average_row()
    result.note("4-way, 1024 sets; seeded random policy (policy_seed)")
    result.note("one set-decomposition answers each row under batch_sweeps")
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-policy")
def ext_policy_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
