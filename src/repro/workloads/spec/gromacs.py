"""SPEC-like ``gromacs`` — molecular-dynamics nonbonded force kernel.

Mechanistic stand-in for 435.gromacs' ``inl1100``-style inner loop:
particles in a periodic box, a Verlet neighbour list, Lennard-Jones force
accumulation.  Per pair: two position gathers (scattered), force
read-modify-writes, neighbour-list streaming.  Momentum conservation of
the integrated system (ΣF ≈ 0) is asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["GromacsWorkload", "build_neighbor_list"]


def build_neighbor_list(pos: np.ndarray, box: float, cutoff: float) -> list[tuple[int, int]]:
    """All pairs within ``cutoff`` under periodic wrap (O(n²) reference)."""
    n = pos.shape[0]
    pairs = []
    for i in range(n):
        d = pos - pos[i]
        d -= box * np.round(d / box)
        dist2 = (d * d).sum(axis=1)
        for j in range(i + 1, n):
            if dist2[j] < cutoff * cutoff:
                pairs.append((i, j))
    return pairs


@register_workload
class GromacsWorkload(Workload):
    name = "gromacs"
    suite = "spec"
    description = "Lennard-Jones force loop over a Verlet neighbour list"
    access_pattern = "neighbour-list streaming + scattered position gathers"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(450, scale, minimum=16)
        steps = self.scaled(12, scale, minimum=2)
        box = 10.0
        pos_arr = m.space.mmap_array(24, n, "positions")  # 3 doubles
        frc_arr = m.space.mmap_array(24, n, "forces")
        nbl_arr = m.space.heap_array(8, 64 * n, "neighbor_list")

        pos = m.rng.uniform(0, box, size=(n, 3))
        vel = m.rng.normal(0, 0.1, size=(n, 3))
        cutoff = 2.2
        dt = 1e-4
        total_f = np.zeros(3)
        for step in range(steps):
            pairs = build_neighbor_list(pos, box, cutoff)
            forces = np.zeros((n, 3))
            for k, (i, j) in enumerate(pairs):
                m.load_elem(nbl_arr, k % nbl_arr.length)
                m.load_elem(pos_arr, i)
                m.load_elem(pos_arr, j)
                d = pos[j] - pos[i]
                d -= box * np.round(d / box)
                r2 = float(d @ d)
                if r2 < 1e-12:
                    continue
                inv6 = (1.0 / r2) ** 3
                fmag = 24.0 * inv6 * (2.0 * inv6 - 1.0) / r2
                f = fmag * d
                forces[i] -= f
                forces[j] += f
                m.load_elem(frc_arr, i)
                m.store_elem(frc_arr, i)
                m.load_elem(frc_arr, j)
                m.store_elem(frc_arr, j)
            # Leapfrog update (sequential sweep).
            vel += dt * np.clip(forces, -1e4, 1e4)
            pos = (pos + dt * vel) % box
            for i in range(n):
                m.load_elem(frc_arr, i)
                m.store_elem(pos_arr, i)
            total_f = forces.sum(axis=0)
        m.builder.meta["net_force"] = [float(v) for v in total_f]
        m.builder.meta["n_atoms"] = n
