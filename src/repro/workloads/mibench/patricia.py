"""MiBench ``patricia`` — PATRICIA trie of IP addresses.

Builds the real bit-level radix trie the benchmark uses for routing-table
lookups: heap-allocated 32-byte nodes, inserts and lookups both chase
pointers root-to-leaf with data-dependent node addresses.  Heap pointer
chasing makes this one of the paper's less uniform, conflict-heavy
workloads (its Figure 4 shows large swings under alternative indexes).

Trie correctness (exact-match lookups) is asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["PatriciaWorkload", "PatriciaTrie"]

_NODE_SIZE = 32  # key(4) bit(4) left(8) right(8) pad(8)
_OFF_KEY, _OFF_BIT, _OFF_LEFT, _OFF_RIGHT = 0, 4, 8, 16


def _bit(key: int, i: int) -> int:
    """Bit ``i`` of a 32-bit key, MSB first; past-the-end reads 0."""
    if i >= 32:
        return 0
    return (key >> (31 - i)) & 1


@dataclass
class _Node:
    key: int
    bit: int
    addr: int
    left: "_Node | None" = None
    right: "_Node | None" = None


@dataclass
class PatriciaTrie:
    """Classic PATRICIA with back-edges (Sedgewick's formulation)."""

    m: Recorder
    header: _Node = field(init=False)

    def __post_init__(self) -> None:
        addr = self.m.space.malloc(_NODE_SIZE, name="pat_header")
        self.header = _Node(key=0, bit=-1, addr=addr)
        self.header.left = self.header

    def _load_node(self, node: _Node, offset: int) -> None:
        self.m.load(node.addr + offset)

    def _store_node(self, node: _Node, offset: int) -> None:
        self.m.store(node.addr + offset)

    def search(self, key: int) -> bool:
        p, x = self.header, self.header.left
        assert x is not None
        self._load_node(p, _OFF_LEFT)
        while x.bit > p.bit:
            p = x
            self._load_node(x, _OFF_BIT)
            self._load_node(x, _OFF_KEY)
            nxt = x.right if _bit(key, x.bit) else x.left
            self._load_node(x, _OFF_RIGHT if _bit(key, x.bit) else _OFF_LEFT)
            assert nxt is not None
            x = nxt
        self._load_node(x, _OFF_KEY)
        return x.key == key

    def insert(self, key: int) -> bool:
        """Insert; returns False if the key already existed."""
        # Phase 1: find the closest existing key.
        p, x = self.header, self.header.left
        assert x is not None
        self._load_node(p, _OFF_LEFT)
        while x.bit > p.bit:
            p = x
            self._load_node(x, _OFF_BIT)
            nxt = x.right if _bit(key, x.bit) else x.left
            self._load_node(x, _OFF_RIGHT if _bit(key, x.bit) else _OFF_LEFT)
            assert nxt is not None
            x = nxt
        self._load_node(x, _OFF_KEY)
        if x.key == key:
            return False
        # First differing bit.
        b = 0
        while _bit(key, b) == _bit(x.key, b):
            b += 1
        # Phase 2: descend again to the insertion point.
        p, q = self.header, self.header.left
        assert q is not None
        self._load_node(p, _OFF_LEFT)
        while q.bit > p.bit and q.bit < b:
            p = q
            self._load_node(q, _OFF_BIT)
            nxt = q.right if _bit(key, q.bit) else q.left
            self._load_node(q, _OFF_RIGHT if _bit(key, q.bit) else _OFF_LEFT)
            assert nxt is not None
            q = nxt
        addr = self.m.space.malloc(_NODE_SIZE, name="pat_node")
        node = _Node(key=key, bit=b, addr=addr)
        if _bit(key, b):
            node.right, node.left = node, q
        else:
            node.right, node.left = q, node
        self._store_node(node, _OFF_KEY)
        self._store_node(node, _OFF_BIT)
        self._store_node(node, _OFF_LEFT)
        self._store_node(node, _OFF_RIGHT)
        if p is self.header or _bit(key, p.bit):
            if p is self.header:
                p.left = node
            else:
                p.right = node
            self._store_node(p, _OFF_RIGHT if p is not self.header else _OFF_LEFT)
        else:
            p.left = node
            self._store_node(p, _OFF_LEFT)
        return True


@register_workload
class PatriciaWorkload(Workload):
    name = "patricia"
    suite = "mibench"
    description = "PATRICIA trie inserts/lookups of random IPv4 addresses"
    access_pattern = "heap pointer chasing over 32-byte trie nodes"

    def kernel(self, m: Recorder, scale: float) -> None:
        n_insert = self.scaled(5000, scale, minimum=16)
        n_lookup = self.scaled(15000, scale, minimum=16)
        trie = PatriciaTrie(m)
        # MiBench's input mixes subnets: cluster keys by /16 prefixes.
        prefixes = m.rng.integers(0, 1 << 16, size=max(4, n_insert // 64))
        keys = []
        for _ in range(n_insert):
            pre = int(prefixes[int(m.rng.integers(0, prefixes.size))])
            key = (pre << 16) | int(m.rng.integers(0, 1 << 16))
            keys.append(key)
            trie.insert(key)
        hits = 0
        for li in range(n_lookup):
            if li % 8 == 0:
                m.printf(24, fmt_id=2)
            if m.rng.random() < 0.7:
                key = keys[int(m.rng.integers(0, len(keys)))]
            else:
                key = int(m.rng.integers(0, 1 << 32))
            hits += trie.search(key)
        m.builder.meta["lookup_hits"] = hits
        m.builder.meta["inserted"] = len(set(keys))
