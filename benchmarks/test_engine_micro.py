"""Engine micro-benchmarks: throughput of the two simulation engines and of
every indexing scheme's vectorised path.

These are the repository's performance-regression canaries (CI replays this
file against the committed ``BENCH_*.json`` baseline and fails on >25%
regression): the vectorised direct-mapped path should sustain millions of
references per second, the k-way stack-distance kernel should clear a
4-way, million-access trace in seconds, and both must stay an order of
magnitude faster than the sequential engine.
"""

from __future__ import annotations

import time

import pytest

from repro.core.address import CacheGeometry, PAPER_L1_GEOMETRY
from repro.core.caches import (
    BalancedCache,
    ColumnAssociativeCache,
    DirectMappedCache,
    PartnerIndexCache,
    SetAssociativeCache,
)
from repro.core.fastassoc import (
    simulate_bcache,
    simulate_column_associative,
    simulate_partner,
)
from repro.core.simulator import simulate, simulate_indexing, simulate_set_associative
from repro.core.indexing import (
    GivargisIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.trace import zipf_trace

G = PAPER_L1_GEOMETRY
G4 = CacheGeometry(G.capacity_bytes, G.line_bytes, 4, G.address_bits)
TRACE = zipf_trace(200_000, seed=17)
TRACE_1M = zipf_trace(1_000_000, seed=17)


def test_vectorised_engine_throughput(benchmark):
    scheme = ModuloIndexing(G)
    result = benchmark(lambda: simulate_indexing(scheme, TRACE, G))
    assert result.accesses == len(TRACE)


def test_sequential_engine_throughput(benchmark):
    short = TRACE[:20_000]

    def run():
        return simulate(DirectMappedCache(G), short)

    assert benchmark(run).accesses == 20_000


@pytest.mark.parametrize(
    "scheme_factory",
    [ModuloIndexing, XorIndexing, PrimeModuloIndexing,
     lambda g: OddMultiplierIndexing(g, 31)],
    ids=["modulo", "xor", "prime_modulo", "odd_multiplier"],
)
def test_scheme_mapping_throughput(benchmark, scheme_factory):
    scheme = scheme_factory(G)
    idx = benchmark(lambda: scheme.indices_of(TRACE.addresses))
    assert idx.size == len(TRACE)


def test_givargis_training_cost(benchmark):
    def run():
        return GivargisIndexing(G).fit(TRACE.addresses)

    assert benchmark(run).fitted


def test_kway_stack_distance_kernel_1m(benchmark):
    """The tentpole workload: a 4-way LRU run over one million accesses.

    Measures the offline stack-distance kernel end to end (index mapping,
    reuse distances, per-set histograms) and — inside the same test so the
    claim travels with the number — checks it beats the sequential engine by
    at least 10× on per-access cost, extrapolating the sequential engine
    from a 25k-access slice (running it over the full million accesses would
    take minutes, which is the point).
    """
    scheme = ModuloIndexing(G4)
    result = benchmark.pedantic(
        lambda: simulate_set_associative(scheme, TRACE_1M, G4),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)
    assert result.model == "set_associative[modulo,4way]"

    short = TRACE_1M[:25_000]
    t0 = time.perf_counter()
    slow = simulate(SetAssociativeCache(G4, policy="lru"), short)
    sequential_per_access = (time.perf_counter() - t0) / len(short)
    assert slow.accesses == len(short)
    fast_per_access = benchmark.stats.stats.min / len(TRACE_1M)
    speedup = sequential_per_access / fast_per_access
    assert speedup >= 10.0, f"k-way fast path only {speedup:.1f}x over sequential"


def test_kway_sequential_engine_throughput(benchmark):
    """Sequential k-way reference cost (the denominator of the speedup)."""
    short = TRACE_1M[:20_000]

    def run():
        return simulate(SetAssociativeCache(G4, policy="lru"), short)

    assert benchmark(run).accesses == 20_000


# -- programmable-associativity fast paths (PR 3) ---------------------------------


def _assert_progassoc_speedup(benchmark, make_cache, trace, floor: float) -> None:
    """Extrapolated sequential-vs-fast comparison, as in the k-way canary."""
    short = trace[:25_000]
    t0 = time.perf_counter()
    slow = simulate(make_cache(), short)
    sequential_per_access = (time.perf_counter() - t0) / len(short)
    assert slow.accesses == len(short)
    fast_per_access = benchmark.stats.stats.min / len(trace)
    speedup = sequential_per_access / fast_per_access
    assert speedup >= floor, (
        f"progassoc fast path only {speedup:.1f}x over sequential (floor {floor}x)"
    )


def test_colassoc_fast_engine_1m(benchmark):
    """Pair-decomposed column-associative run over one million accesses.

    The acceptance bar of the fastassoc PR: ≥ 5× over the sequential
    reference (extrapolated from a 25k slice), bit-identity being locked by
    ``tests/core/test_fastassoc_differential.py``.
    """
    result = benchmark.pedantic(
        lambda: simulate_column_associative(ColumnAssociativeCache(G), TRACE_1M),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)
    assert result.hits == result.extra.get("first_probe_hits", 0) + result.extra.get(
        "rehash_hits", 0
    )
    _assert_progassoc_speedup(
        benchmark, lambda: ColumnAssociativeCache(G), TRACE_1M, 5.0
    )


def test_bcache_fast_engine_1m(benchmark):
    """Cluster-decomposed B-cache run over one million accesses (≥ 5×)."""
    result = benchmark.pedantic(
        lambda: simulate_bcache(BalancedCache(G), TRACE_1M),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)
    assert result.lookup_cycles == len(TRACE_1M)  # single-cycle decode
    _assert_progassoc_speedup(benchmark, lambda: BalancedCache(G), TRACE_1M, 5.0)


def test_partner_fast_engine_1m(benchmark):
    """Windowed partner-cache run over one million accesses."""
    result = benchmark.pedantic(
        lambda: simulate_partner(PartnerIndexCache(G), TRACE_1M),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)


def test_colassoc_sequential_engine_throughput(benchmark):
    """Sequential column-associative reference cost (speedup denominator)."""
    short = TRACE_1M[:20_000]

    def run():
        return simulate(ColumnAssociativeCache(G), short)

    assert benchmark(run).accesses == 20_000


def test_bcache_sequential_engine_throughput(benchmark):
    """Sequential B-cache reference cost (speedup denominator)."""
    short = TRACE_1M[:20_000]

    def run():
        return simulate(BalancedCache(G), short)

    assert benchmark(run).accesses == 20_000


def test_parallel_engine_fanout_overhead(benchmark):
    """Cost of one warm 4-cell engine pass at jobs=2.

    Workers receive npz *paths*, so this measures pool + path-transfer
    overhead, not trace pickling: the number should track process startup
    and stay flat as ``ref_limit`` grows.
    """
    import tempfile
    from pathlib import Path

    from repro.experiments.config import PaperConfig
    from repro.experiments.engine import make_cell, run_cells

    tmp = Path(tempfile.mkdtemp(prefix="bench_fanout_"))
    config = PaperConfig(
        ref_limit=50_000, trace_cache_dir=tmp, use_result_cache=False
    )
    cells = [
        make_cell("progassoc", w, label, config)
        for w in ("crc", "fft")
        for label in ("B_Cache", "Column_associative")
    ]
    run_cells(cells, config, jobs=1)  # pre-warm the trace cache

    def run():
        return run_cells(cells, config, jobs=2)

    results, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert stats.cache_misses == len(cells)
    assert len(results) == len(cells)
