"""Instruction-cache subsystem tests: layout, trace generation, placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.indexing import ModuloIndexing
from repro.core.simulator import simulate_indexing
from repro.icache import (
    CallProfile,
    CodeLayout,
    Procedure,
    generate_itrace,
    optimize_placement,
    synthetic_call_sequence,
    weighted_overlap_cost,
)

G = PAPER_L1_GEOMETRY


def simple_program():
    return [
        Procedure("hot_a", 2048, body_coverage=1.0),
        Procedure("hot_b", 2048, body_coverage=1.0),
        Procedure("cold", 4096, body_coverage=0.5),
    ]


class TestProcedure:
    def test_validation(self):
        with pytest.raises(ValueError):
            Procedure("x", 0)
        with pytest.raises(ValueError):
            Procedure("x", 64, body_coverage=0.0)


class TestCodeLayout:
    def test_sequential_placement_non_overlapping(self):
        layout = CodeLayout(simple_program())
        assert layout.overlaps() == []
        assert layout.start_of("hot_b") >= layout.end_of("hot_a")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CodeLayout([Procedure("a", 64), Procedure("a", 64)])

    def test_place_at_aligns(self):
        layout = CodeLayout(simple_program(), align=16)
        layout.place_at("cold", 0x1001)
        assert layout.start_of("cold") % 16 == 0

    def test_blocks_of_cover_body(self):
        layout = CodeLayout(simple_program())
        blocks = layout.blocks_of("hot_a", 32)
        assert blocks.size == pytest.approx(2048 / 32, abs=1)

    def test_overlap_detection(self):
        layout = CodeLayout(simple_program())
        layout.place_at("hot_b", layout.start_of("hot_a") + 64)
        assert ("hot_a", "hot_b") in layout.overlaps()


class TestCallProfile:
    def test_record_sequence(self):
        p = CallProfile().record_sequence(["a", "b", "a", "b", "c"])
        assert p.calls == {"a": 2, "b": 2, "c": 1}
        assert p.weight("a", "b") == 3  # a->b, b->a, a->b
        assert p.hot_order()[0] in ("a", "b")

    def test_self_adjacency_ignored(self):
        p = CallProfile().record_sequence(["a", "a", "a"])
        assert p.weight("a", "a") == 0


class TestTraceGeneration:
    def test_sequential_fetch_addresses(self):
        layout = CodeLayout([Procedure("f", 128)])
        t = generate_itrace(layout, ["f"], line_bytes=32)
        start = layout.start_of("f")
        assert t.addresses.tolist() == [start, start + 32, start + 64, start + 96]

    def test_loop_iterations_refetch(self):
        layout = CodeLayout([Procedure("f", 64)])
        t = generate_itrace(layout, ["f"], line_bytes=32, loop_iterations=3)
        assert len(t) == 6

    def test_body_coverage_truncates(self):
        layout = CodeLayout([Procedure("f", 1024, body_coverage=0.25)])
        t = generate_itrace(layout, ["f"], line_bytes=32)
        assert len(t) == 8  # 256 bytes / 32

    def test_invalid_loop_count(self):
        layout = CodeLayout([Procedure("f", 64)])
        with pytest.raises(ValueError):
            generate_itrace(layout, ["f"], loop_iterations=0)

    def test_synthetic_sequence_properties(self):
        names = [f"p{i}" for i in range(10)]
        seq = synthetic_call_sequence(names, length=500, seed=3)
        assert len(seq) == 500
        assert set(seq) <= set(names)
        # Zipf popularity: the hottest procedure clearly dominates the coldest.
        from collections import Counter

        counts = Counter(seq).most_common()
        assert counts[0][1] > 3 * counts[-1][1]


class TestPlacement:
    def test_aliasing_hot_pair_is_separated(self):
        """Two ping-ponging procedures placed exactly a cache-capacity apart
        conflict on every call; the optimiser must separate them."""
        procs = [Procedure("a", 2048), Procedure("b", 2048), Procedure("pad", 28 * 1024)]
        layout = CodeLayout(procs)
        layout.place_sequentially(order=["a", "pad", "b"])
        # Force exact aliasing: b at a's address + capacity.
        layout.place_at("b", layout.start_of("a") + G.capacity_bytes)
        calls = ["a", "b"] * 200
        profile = CallProfile().record_sequence(calls)
        base_trace = generate_itrace(layout, calls, line_bytes=G.line_bytes)
        base = simulate_indexing(ModuloIndexing(G), base_trace, G)
        assert base.miss_rate > 0.9  # every fetch conflicts

        new_layout, cost_before, cost_after = optimize_placement(layout, profile, G)
        assert cost_after < cost_before
        assert new_layout.overlaps() == []
        opt_trace = generate_itrace(new_layout, calls, line_bytes=G.line_bytes)
        opt = simulate_indexing(ModuloIndexing(G), opt_trace, G)
        assert opt.miss_rate < 0.1

    def test_weighted_overlap_cost_zero_when_disjoint(self):
        procs = [Procedure("a", 1024), Procedure("b", 1024)]
        layout = CodeLayout(procs)  # sequential => disjoint sets (small code)
        profile = CallProfile().record_sequence(["a", "b"] * 10)
        assert weighted_overlap_cost(layout, profile, G) == 0.0

    def test_optimized_layout_keeps_all_procedures(self):
        procs = simple_program()
        layout = CodeLayout(procs)
        profile = CallProfile().record_sequence(["hot_a", "hot_b"] * 50 + ["cold"])
        new_layout, _, _ = optimize_placement(layout, profile, G)
        assert set(new_layout.procedures) == {p.name for p in procs}
        assert new_layout.overlaps() == []
