"""Adaptive group-associative cache (paper Section III.B; Peir et al.,
ASPLOS'98).

A direct-mapped array augmented with:

* **SHT** (set-reference history table) — an LRU list of the most recently
  used set indexes.  Sets present in the SHT are "hot"; their lines are
  protected.  Lines of sets that age out of the SHT become *disposable*
  (``d`` bit set), i.e. fair game for holding other sets' displaced data.
* **OUT** (out-of-position directory) — an LRU map from block identity to
  the alternate line currently holding it.  Probed in parallel with the
  cache, so an OUT hit costs 3 cycles total (per the paper's Section IV.B
  AMAT accounting) instead of 1.

Behaviour per access (following the paper's prose):

1. primary probe: hit → 1 cycle, SHT updated with the set.
2. primary miss → OUT probe: hit → 3 cycles; the block is swapped into its
   primary line and the displaced primary occupant takes over the alternate
   line (OUT updated to track it).
3. both miss → a true miss.  If the primary line is disposable — or holds an
   *out-of-position* block (one that was itself relocated here; such blocks
   are covered by the OUT directory and are never relocated a second time,
   which would cascade) — it is simply replaced.  If it holds a protected
   in-position victim, that victim is relocated into a disposable line: the
   *coldest* one (the line whose set aged out of the SHT longest ago) while
   the OUT has room, else the line named by the OUT's LRU entry, per the
   paper ("if the OUT directory is full then the least-recently used slot in
   the OUT directory is used"; its disposable bit is reset and the evicted
   tag recorded).

Default table sizes follow the paper's Section IV: SHT = 3/8 and
OUT = 4/16 (=1/4) of the number of cache sets.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["AdaptiveGroupAssociativeCache"]


class AdaptiveGroupAssociativeCache(CacheModel):
    """Direct-mapped array + SHT/OUT directories + disposable bits."""

    name = "adaptive"

    #: Extra cycles charged on an OUT-directory hit (paper Eq. 8 uses 3 total).
    OUT_HIT_CYCLES = 3

    def __init__(
        self,
        geometry: CacheGeometry,
        indexing: IndexingScheme | None = None,
        sht_fraction: float = 3 / 8,
        out_fraction: float = 4 / 16,
    ):
        if geometry.ways != 1:
            raise ValueError("adaptive group-associative cache is built on a 1-way geometry")
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        n = geometry.num_sets
        self.sht_capacity = max(1, int(n * sht_fraction))
        self.out_capacity = max(1, int(n * out_fraction))
        self._blocks = np.full(n, EMPTY, dtype=np.int64)
        self._disposable = np.ones(n, dtype=bool)  # empty lines start disposable
        self._out_of_position = np.zeros(n, dtype=bool)
        self._sht: OrderedDict[int, None] = OrderedDict()  # set index, LRU order
        self._out: OrderedDict[int, int] = OrderedDict()  # block -> alternate slot
        # Disposable lines ordered coldest-first (aging out of the SHT
        # appends; re-protection removes).  Seeded with every line.
        self._cold_pool: OrderedDict[int, None] = OrderedDict((s, None) for s in range(n))
        self._offset_bits = geometry.offset_bits

    # -- SHT management ------------------------------------------------------------

    def _sht_touch(self, slot: int) -> None:
        """Mark ``slot`` most-recently-used; demote the set it displaces."""
        if slot in self._sht:
            self._sht.move_to_end(slot)
        else:
            self._sht[slot] = None
            if len(self._sht) > self.sht_capacity:
                cold, _ = self._sht.popitem(last=False)
                self._make_disposable(cold)
        self._disposable[slot] = False
        self._cold_pool.pop(slot, None)

    def _make_disposable(self, slot: int) -> None:
        if not self._disposable[slot]:
            self._disposable[slot] = True
            self._cold_pool[slot] = None
            self._cold_pool.move_to_end(slot)

    # -- OUT management --------------------------------------------------------------

    def _select_relocation_target(self, slot: int) -> int | None:
        """Destination per the paper: the coldest disposable line while the
        OUT has room, else the line of the OUT's LRU entry."""
        if len(self._out) >= self.out_capacity and self._out:
            _, dest = next(iter(self._out.items()))  # LRU end
            return dest
        for cand in self._cold_pool:
            if cand != slot:
                return cand
        return None

    def _trim_out(self) -> None:
        while len(self._out) > self.out_capacity:
            blk, dest = self._out.popitem(last=False)
            # The block loses directory coverage; its line becomes disposable.
            if self._blocks[dest] == blk:
                self._make_disposable(dest)

    # -- access -----------------------------------------------------------------------

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        slot = self.indexing.index_of(block << self._offset_bits)
        self.stats.record_probe(slot)

        if self._blocks[slot] == block:
            self._sht_touch(slot)
            self.stats.record_hit(slot, "direct")
            return AccessResult(True, 1, slot, slot, hit_class="direct")

        # OUT directory probed in parallel with the cache.
        alt = self._out.get(block)
        if alt is not None and self._blocks[alt] == block:
            self.stats.record_probe(alt)
            del self._out[block]
            displaced = int(self._blocks[slot])
            # Swap into the primary position for future 1-cycle hits.
            self._blocks[slot] = block
            self._out_of_position[slot] = False
            if displaced != EMPTY:
                self._blocks[alt] = displaced
                self._out_of_position[alt] = True
                self._disposable[alt] = False
                self._cold_pool.pop(alt, None)
                self._out[displaced] = alt
                self._out.move_to_end(displaced)
                self._trim_out()
            else:
                self._blocks[alt] = EMPTY
                self._out_of_position[alt] = False
                self._make_disposable(alt)
            self._sht_touch(slot)
            self.stats.record_hit(alt, "out")
            return AccessResult(True, self.OUT_HIT_CYCLES, slot, alt, hit_class="out")
        if alt is not None:
            # Stale directory entry (alternate line was reused); drop it.
            del self._out[block]

        # True miss.
        evicted: int | None = None
        victim = int(self._blocks[slot])
        protected = (
            victim != EMPTY
            and not self._disposable[slot]
            and not self._out_of_position[slot]
        )
        if protected:
            dest = self._select_relocation_target(slot)
            if dest is not None:
                evicted_from_dest = int(self._blocks[dest])
                if evicted_from_dest != EMPTY:
                    evicted = evicted_from_dest
                    self._out.pop(evicted_from_dest, None)
                self._blocks[dest] = victim
                self._disposable[dest] = False
                self._cold_pool.pop(dest, None)
                self._out_of_position[dest] = True
                self._out[victim] = dest
                self._out.move_to_end(victim)
                self._trim_out()
            else:
                # No disposable line available: fall back to eviction.
                evicted = victim
                self._out.pop(victim, None)
        elif victim != EMPTY:
            # Disposable or out-of-position line: plain replacement.
            evicted = victim
            self._out.pop(victim, None)
        self._blocks[slot] = block
        self._out_of_position[slot] = False
        self._sht_touch(slot)
        self.stats.record_miss(slot)
        return AccessResult(False, 1, slot, slot, evicted_block=evicted)

    # -- AMAT fraction (Eq. 8 input) ----------------------------------------------

    @property
    def fraction_direct_hits(self) -> float:
        """Share of *hits* serviced by the primary probe (1 cycle)."""
        if not self.stats.hits:
            return 1.0
        return self.stats.extra.get("direct_hits", 0) / self.stats.hits

    def contents(self) -> set[int]:
        return {int(b) for b in self._blocks if b != EMPTY}

    def check_invariants(self) -> None:
        resident = self._blocks[self._blocks != EMPTY]
        assert np.unique(resident).size == resident.size, "duplicate resident block"
        assert len(self._out) <= self.out_capacity
        assert len(self._sht) <= self.sht_capacity
        for slot in self._cold_pool:
            assert self._disposable[slot], "pool member not disposable"
        self.stats.check_invariants()

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._disposable.fill(True)
        self._out_of_position.fill(False)
        self._sht.clear()
        self._out.clear()
        self._cold_pool = OrderedDict((s, None) for s in range(self.geometry.num_sets))
