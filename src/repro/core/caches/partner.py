"""Partner-index programmable associativity (the paper's Figure 3 sketch).

The paper sketches — without evaluating — a generalisation of pseudo-
associativity: each line gains an ``L`` (linked) bit and a *partner index*
naming a second line, so hot lines borrow capacity from cold ones.  Partners
can in principle chain into linked lists, trading lookup cycles for
associativity.  We implement a concrete dynamic version as an extension:

* per-line access and miss counters accumulate during execution;
* every ``rebalance_period`` accesses, the hottest unlinked lines (by misses
  since the last rebalance) are paired with the coldest unlinked lines (by
  accesses), up to ``max_links`` live pairs;
* a lookup probes the primary line, then follows the partner link if the
  ``L`` bit is set (one extra cycle per hop); a miss allocates into the
  least-recently-touched line of the chain.

Pairs are torn down and re-formed at each rebalance, so the structure adapts
as the program's hot set drifts — the "dynamically match cache lines as
partners by keeping count of accesses and/or misses to each set" option in
the paper's text.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["PartnerIndexCache"]


class PartnerIndexCache(CacheModel):
    """Direct-mapped array with dynamically linked partner lines."""

    name = "partner"

    def __init__(
        self,
        geometry: CacheGeometry,
        indexing: IndexingScheme | None = None,
        rebalance_period: int = 8192,
        max_links: int | None = None,
    ):
        if geometry.ways != 1:
            raise ValueError("the partner cache augments a direct-mapped geometry")
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        n = geometry.num_sets
        self.rebalance_period = rebalance_period
        self.max_links = max_links if max_links is not None else n // 8
        self._blocks = np.full(n, EMPTY, dtype=np.int64)
        self._linked = np.zeros(n, dtype=bool)  # the L bit
        self._partner = np.full(n, -1, dtype=np.int64)
        self._is_donor = np.zeros(n, dtype=bool)  # cold line lending capacity
        self._stamp = np.zeros(n, dtype=np.int64)  # per-line LRU between pairs
        self._clock = 0
        # Counters over the current rebalance window.
        self._window_accesses = np.zeros(n, dtype=np.int64)
        self._window_misses = np.zeros(n, dtype=np.int64)
        self._since_rebalance = 0
        self._offset_bits = geometry.offset_bits

    # -- linking -----------------------------------------------------------------

    def _rebalance(self) -> None:
        """Re-pair hot (missing) lines with cold (idle) lines."""
        # Tear down existing links; resident borrowed blocks stay where they
        # are and are simply rediscovered as misses later (a cold flush of
        # links, matching a hardware table rewrite).
        self._linked.fill(False)
        self._is_donor.fill(False)
        self._partner.fill(-1)
        hot_order = np.argsort(self._window_misses)[::-1]
        cold_order = np.argsort(self._window_accesses)
        hot_iter = iter(hot_order)
        used: set[int] = set()
        links = 0
        cold_pos = 0
        for hot in hot_iter:
            hot = int(hot)
            if links >= self.max_links or self._window_misses[hot] == 0:
                break
            if hot in used:
                continue
            # Find the coldest line not already spoken for and not the hot
            # line itself.
            while cold_pos < cold_order.size:
                cold = int(cold_order[cold_pos])
                cold_pos += 1
                if cold != hot and cold not in used:
                    break
            else:
                break
            if self._window_accesses[cold] >= self._window_misses[hot]:
                # No line cold enough to be worth borrowing.
                break
            self._linked[hot] = True
            self._partner[hot] = cold
            self._is_donor[cold] = True
            used.add(hot)
            used.add(cold)
            links += 1
        self._window_accesses.fill(0)
        self._window_misses.fill(0)
        self._since_rebalance = 0

    # -- access -------------------------------------------------------------------

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        self._since_rebalance += 1
        if self._since_rebalance >= self.rebalance_period:
            self._rebalance()
        slot = self.indexing.index_of(block << self._offset_bits)
        self._clock += 1
        self._window_accesses[slot] += 1
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self._stamp[slot] = self._clock
            self.stats.record_hit(slot, "direct")
            return AccessResult(True, 1, slot, slot, hit_class="direct")
        if self._linked[slot]:
            partner = int(self._partner[slot])
            self.stats.record_probe(partner)
            if self._blocks[partner] == block:
                self._stamp[partner] = self._clock
                self.stats.record_hit(partner, "partner")
                return AccessResult(True, 2, slot, partner, hit_class="partner")
            # Miss in the pair: allocate into the least-recently-used of the
            # two lines (a 2-way set spanning the pair).
            target = slot if self._stamp[slot] <= self._stamp[partner] else partner
            evicted = int(self._blocks[target])
            self._blocks[target] = block
            self._stamp[target] = self._clock
            self._window_misses[slot] += 1
            self.stats.record_miss(slot, "partner")
            return AccessResult(
                False, 2, slot, target, evicted_block=None if evicted == EMPTY else evicted
            )
        evicted = int(self._blocks[slot])
        self._blocks[slot] = block
        self._stamp[slot] = self._clock
        self._window_misses[slot] += 1
        self.stats.record_miss(slot)
        return AccessResult(
            False, 1, slot, slot, evicted_block=None if evicted == EMPTY else evicted
        )

    @property
    def live_links(self) -> int:
        return int(self._linked.sum())

    def contents(self) -> set[int]:
        return {int(b) for b in self._blocks if b != EMPTY}

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._linked.fill(False)
        self._partner.fill(-1)
        self._is_donor.fill(False)
