"""Extension experiment: instruction-cache conflicts and their remedies.

The paper's introduction reviews Liang & Mitra's procedure placement ([16])
as the software-side answer to the same non-uniformity problem its own
techniques attack in hardware.  This experiment puts both on one axis: a
synthetic program (Zipf-hot procedures, phased call locality) is run
against the paper's L1 geometry as an *instruction* cache, comparing

* the natural (link-order) layout — the baseline,
* the same layout under XOR / prime-modulo indexing (hardware fixes),
* the IBP-style optimised placement under conventional indexing (the
  software fix from [16]),
* and placement + XOR together.

Columns are % reduction in I-cache misses vs the natural layout.
"""

from __future__ import annotations

from ..core.indexing import ModuloIndexing, PrimeModuloIndexing, XorIndexing
from ..core.simulator import simulate_indexing
from ..core.uniformity import percent_reduction
from ..icache import (
    CallProfile,
    CodeLayout,
    Procedure,
    generate_itrace,
    optimize_placement,
    synthetic_call_sequence,
)
from .config import PaperConfig
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_ext_icache", "build_program"]


def build_program(seed: int, n_procs: int = 24):
    """A synthetic program: procedure sizes from a few hundred bytes to a
    few KiB (libc-ish), hot loops covering part of each body."""
    import numpy as np

    rng = np.random.default_rng(seed)
    procs = [
        Procedure(
            name=f"fn{i:02d}",
            size_bytes=int(rng.integers(256, 6144)),
            body_coverage=float(rng.uniform(0.4, 1.0)),
        )
        for i in range(n_procs)
    ]
    layout = CodeLayout(procs)
    calls = synthetic_call_sequence([p.name for p in procs], length=3000, seed=seed)
    profile = CallProfile().record_sequence(calls, window=2)
    return layout, calls, profile


@register_experiment("ext-icache")
def run_ext_icache(config: PaperConfig) -> ExperimentResult:
    g = config.geometry  # the paper's L1I is the same 32 KiB direct-mapped shape
    result = ExperimentResult(
        experiment_id="ext-icache",
        title="% reduction in L1I misses vs natural layout (HW hashing vs SW placement)",
        columns=["XOR", "Prime_Modulo", "Placement", "Placement+XOR"],
    )
    for seed in (1, 2, 3):
        layout, calls, profile = build_program(config.seed + seed)
        trace = generate_itrace(layout, calls, line_bytes=g.line_bytes, loop_iterations=2)
        base = simulate_indexing(ModuloIndexing(g), trace, g)
        row = {
            "XOR": percent_reduction(
                simulate_indexing(XorIndexing(g), trace, g).misses, base.misses
            ),
            "Prime_Modulo": percent_reduction(
                simulate_indexing(PrimeModuloIndexing(g), trace, g).misses, base.misses
            ),
        }
        optimised, cost_before, cost_after = optimize_placement(layout, profile, g)
        opt_trace = generate_itrace(
            optimised, calls, line_bytes=g.line_bytes, loop_iterations=2
        )
        row["Placement"] = percent_reduction(
            simulate_indexing(ModuloIndexing(g), opt_trace, g).misses, base.misses
        )
        row["Placement+XOR"] = percent_reduction(
            simulate_indexing(XorIndexing(g), opt_trace, g).misses, base.misses
        )
        result.add_row(f"program{seed}", row)
        result.arrays[f"program{seed}/overlap_before"] = cost_before
        result.arrays[f"program{seed}/overlap_after"] = cost_after
    result.add_average_row()
    result.note("Placement = greedy IBP-style displacement selection ([16] in the paper)")
    result.note(
        "hashing barely moves I-cache misses: procedure bodies are contiguous, "
        "and XOR-by-a-constant nearly preserves the set intersection of two "
        "contiguous ranges — code conflicts need *placement*, not hashing, "
        "which is why [16] is a software technique"
    )
    return result
