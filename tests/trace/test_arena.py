"""The process-wide trace arena: bounded LRU semantics, byte accounting,
invalidation-on-change, and the module singleton.

The arena replaced the unbounded per-module ``_TRACE_MEMO`` dict in the
experiment engine (PR 8), so the load-bearing properties are: repeated
``get`` of one path returns the *same* underlying arrays (no re-open, no
copy), total accounted bytes stay within the configured budget under an
unbounded stream of distinct paths (the ``repro serve`` soak), and a file
rewritten underneath the arena is re-opened rather than served stale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.trace import Trace, save_raw, zipf_trace
from repro.trace.arena import TraceArena, get_arena, reset_arena
from repro.trace.io import RAW_SUFFIX, save_npz


def _make(tmp_path, name: str, n: int = 256):
    return save_raw(zipf_trace(n, seed=hash(name) % 1000), tmp_path / f"{name}{RAW_SUFFIX}")


class TestHitsAndIdentity:
    def test_second_get_is_a_hit_with_same_arrays(self, tmp_path):
        arena = TraceArena()
        path = _make(tmp_path, "a")
        first = arena.get(path)
        second = arena.get(path)
        assert second.addresses is first.addresses
        assert second.is_write is first.is_write
        assert second.thread is first.thread
        stats = arena.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.entries == 1

    def test_name_override_shares_arrays(self, tmp_path):
        arena = TraceArena()
        path = _make(tmp_path, "a")
        plain = arena.get(path)
        renamed = arena.get(path, name="fft")
        assert renamed.name == "fft"
        assert renamed.addresses is plain.addresses

    def test_npz_entries_also_served(self, tmp_path):
        arena = TraceArena()
        t = zipf_trace(100, seed=1)
        path = save_npz(t, tmp_path / "legacy.npz")
        np.testing.assert_array_equal(arena.get(path).addresses, t.addresses)
        assert arena.stats().entries == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceArena().get(tmp_path / f"nope{RAW_SUFFIX}")


class TestBudget:
    def test_lru_eviction_keeps_bytes_bounded(self, tmp_path):
        paths = [_make(tmp_path, f"t{i}") for i in range(8)]
        one = TraceArena().get(paths[0])
        per_entry = sum(a.nbytes for a in (one.addresses, one.is_write, one.thread))
        arena = TraceArena(max_bytes=3 * per_entry)
        for p in paths:
            arena.get(p)
        stats = arena.stats()
        assert stats.bytes <= stats.max_bytes
        assert stats.entries == 3
        assert stats.evictions == len(paths) - 3

    def test_eviction_order_is_lru_not_insertion(self, tmp_path):
        paths = [_make(tmp_path, f"t{i}") for i in range(3)]
        one = TraceArena().get(paths[0])
        per_entry = sum(a.nbytes for a in (one.addresses, one.is_write, one.thread))
        arena = TraceArena(max_bytes=2 * per_entry)
        arena.get(paths[0])
        arena.get(paths[1])
        arena.get(paths[0])  # refresh t0 → t1 is now least recent
        arena.get(paths[2])  # evicts t1
        before = arena.stats().misses
        arena.get(paths[0])
        assert arena.stats().misses == before  # t0 survived
        arena.get(paths[1])
        assert arena.stats().misses == before + 1  # t1 was the victim

    def test_single_oversized_entry_still_admitted(self, tmp_path):
        path = _make(tmp_path, "big", n=4096)
        arena = TraceArena(max_bytes=16)  # far below one entry
        trace = arena.get(path)
        assert len(trace) == 4096
        assert arena.stats().entries == 1  # never evicts the most-recent

    def test_configure_shrink_evicts_immediately(self, tmp_path):
        paths = [_make(tmp_path, f"t{i}") for i in range(4)]
        arena = TraceArena()
        for p in paths:
            arena.get(p)
        assert arena.stats().entries == 4
        one = arena.get(paths[0])
        per_entry = sum(a.nbytes for a in (one.addresses, one.is_write, one.thread))
        arena.configure(2 * per_entry)
        stats = arena.stats()
        assert stats.entries == 2
        assert stats.bytes <= stats.max_bytes

    def test_soak_many_distinct_traces_stays_bounded(self, tmp_path):
        """The ``repro serve`` leak scenario: far more distinct traces than
        the budget holds must not grow the retained set (the old
        ``_TRACE_MEMO`` dict kept every one forever)."""
        one = TraceArena().get(_make(tmp_path, "probe"))
        per_entry = sum(a.nbytes for a in (one.addresses, one.is_write, one.thread))
        budget = 4 * per_entry
        arena = TraceArena(max_bytes=budget)
        for i in range(40):  # 10x the budget in distinct entries
            arena.get(_make(tmp_path, f"soak{i}"))
            assert arena.stats().bytes <= budget
        stats = arena.stats()
        assert stats.entries == 4
        assert stats.evictions == 36
        # ... and the retained tail is still the hottest one.
        before = stats.misses
        arena.get(tmp_path / f"soak39{RAW_SUFFIX}")
        assert arena.stats().misses == before


class TestInvalidation:
    def test_rewritten_file_is_reopened(self, tmp_path):
        arena = TraceArena()
        path = tmp_path / f"t{RAW_SUFFIX}"
        save_raw(zipf_trace(100, seed=1), path)
        old = arena.get(path)
        new_trace = zipf_trace(100, seed=2)
        save_raw(new_trace, path)
        # Guarantee an mtime/size delta even on coarse-mtime filesystems.
        os.utime(path, ns=(path.stat().st_atime_ns, path.stat().st_mtime_ns + 1))
        reloaded = arena.get(path)
        np.testing.assert_array_equal(reloaded.addresses, new_trace.addresses)
        assert not np.array_equal(reloaded.addresses, old.addresses)
        stats = arena.stats()
        assert stats.invalidations == 1
        assert stats.entries == 1  # stale entry's bytes were released

    def test_bytes_accounting_survives_invalidation(self, tmp_path):
        arena = TraceArena()
        path = tmp_path / f"t{RAW_SUFFIX}"
        save_raw(zipf_trace(64, seed=1), path)
        arena.get(path)
        save_raw(zipf_trace(128, seed=1), path)
        os.utime(path, ns=(path.stat().st_atime_ns, path.stat().st_mtime_ns + 1))
        bigger = arena.get(path)
        expected = sum(
            a.nbytes for a in (bigger.addresses, bigger.is_write, bigger.thread)
        )
        assert arena.stats().bytes == expected


class TestSingleton:
    def test_get_arena_returns_one_instance(self):
        reset_arena()
        try:
            assert get_arena() is get_arena()
        finally:
            reset_arena()

    def test_clear_releases_everything(self, tmp_path):
        arena = TraceArena()
        arena.get(_make(tmp_path, "a"))
        arena.clear()
        stats = arena.stats()
        assert (stats.entries, stats.bytes) == (0, 0)


class TestEngineIntegration:
    def test_engine_trace_at_goes_through_arena(self, tmp_path):
        """``cells._trace_at`` must hit the shared arena and adopt the
        config's byte budget."""
        from repro.experiments.config import PaperConfig
        from repro.experiments.engine.cells import _trace_at

        reset_arena()
        try:
            path = _make(tmp_path, "w")
            config = PaperConfig(trace_arena_bytes=123456789)
            a = _trace_at(path, "fft", config)
            b = _trace_at(path, "fft", config)
            assert a.addresses is b.addresses
            assert a.name == "fft"
            stats = get_arena().stats()
            assert stats.max_bytes == 123456789
            assert (stats.hits, stats.misses) == (1, 1)
        finally:
            reset_arena()
