"""HPC ``transpose`` — naive out-of-place matrix transpose.

The textbook cache-indexing pathology: reading ``A`` row-wise while writing
``B = Aᵀ`` column-wise makes the writes stride by the full row length.
With a power-of-two matrix dimension every write in a column lands in the
same handful of sets under conventional indexing — the exact case
prime-modulo indexing was invented for (Kharbutli et al. open with it).
Transpose correctness is asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["TransposeWorkload"]


@register_workload
class TransposeWorkload(Workload):
    name = "transpose"
    suite = "hpc"
    description = "Naive N x N double-precision matrix transpose (N power of 2)"
    access_pattern = "unit-stride reads vs full-row-stride writes"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = 1 << max(4, round(7 * min(scale, 1.0)) if scale < 1.0 else 7)  # 128
        reps = self.scaled(3, scale, minimum=1)
        a_arr = m.space.heap_array(8, n * n, "A")
        b_arr = m.space.heap_array(8, n * n, "B")
        a = m.rng.normal(0, 1, size=(n, n))
        b = np.zeros((n, n))
        if m.bulk:
            # The scalar loop visits A row-major (element ij = i*n+j) and
            # writes B at (ij % n)*n + ij // n; one load/store pair per
            # element, so one two-column interleave per repetition.
            ij = np.arange(n * n)
            loads = a_arr.addrs(ij)
            stores = b_arr.addrs((ij % n) * n + ij // n)
            b[:, :] = a.T  # same element copies as the scalar loop
            for _ in range(reps):
                m.interleaved_stream((loads, False), (stores, True))
        else:
            for _ in range(reps):
                for i in range(n):
                    for j in range(n):
                        m.load_elem(a_arr, i * n + j)
                        b[j, i] = a[i, j]
                        m.store_elem(b_arr, j * n + i)
        m.builder.meta["is_transpose"] = bool(np.array_equal(b, a.T))
        m.builder.meta["n"] = n
