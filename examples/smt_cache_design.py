#!/usr/bin/env python
"""SMT shared-cache design space — the paper's Section IV.E experiments.

Two threads share the paper's 32 KiB direct-mapped L1.  This example walks
the design options the paper evaluates:

* **shared, conventional** — both threads index with modulo (the baseline
  whose inter-thread conflicts motivate everything else);
* **shared, per-thread odd multipliers** — Figure 13's proposal;
* **statically partitioned** — half the sets per thread (isolation, but a
  thread cannot use its neighbour's idle capacity);
* **partitioned adaptive** — Figure 14's proposal: partitions plus global
  SHT/OUT tables that spill displaced blocks into the other partition's
  cold lines.

Run:  python examples/smt_cache_design.py [workload0] [workload1] [refs]
"""

from __future__ import annotations

import sys

from repro import PAPER_L1_GEOMETRY, TimingModel
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing
from repro.core.selector import ThreadSchemeTable
from repro.multithread import (
    PartitionedAdaptiveCache,
    SMTSharedCache,
    StaticPartitionedCache,
    simulate_partitioned,
    simulate_smt,
)
from repro.trace import round_robin
from repro.workloads import get_workload


def main() -> int:
    w0 = sys.argv[1] if len(sys.argv) > 1 else "fft"
    w1 = sys.argv[2] if len(sys.argv) > 2 else "susan"
    refs = int(sys.argv[3]) if len(sys.argv) > 3 else 60_000
    g = PAPER_L1_GEOMETRY
    timing = TimingModel()

    t0 = get_workload(w0).generate(seed=2011, ref_limit=refs // 2, thread=0)
    t1 = get_workload(w1).generate(seed=2012, ref_limit=refs // 2, thread=1)
    mix = round_robin([t0, t1])
    print(f"Thread 0: {w0}, thread 1: {w1} — {len(mix)} interleaved references")
    print(f"Shared L1: {g.describe()}\n")

    # 1. Shared cache, both threads conventional.
    base = simulate_smt(SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)] * 2)), mix)
    print(
        f"shared/conventional:     miss rate {base.miss_rate:.4f} "
        f"({base.cross_evictions} cross-thread evictions)"
    )

    # 2. Shared cache, per-thread odd multipliers (Figure 13).
    table = ThreadSchemeTable([OddMultiplierIndexing(g, 9), OddMultiplierIndexing(g, 31)])
    multi = simulate_smt(SMTSharedCache(g, table), mix)
    red = 100.0 * (base.misses - multi.misses) / max(base.misses, 1)
    print(
        f"shared/multi-index:      miss rate {multi.miss_rate:.4f} "
        f"({red:+.1f}% misses, {multi.cross_evictions} cross-thread evictions)"
    )

    # 3. Static halves (thread isolation).
    static = simulate_partitioned(StaticPartitionedCache(g, 2), mix)
    s_amat = static.amat(timing)
    print(f"static partitions:       miss rate {static.miss_rate:.4f} (AMAT {s_amat:.2f})")

    # 4. Partitioned adaptive (Figure 14).
    adaptive = simulate_partitioned(PartitionedAdaptiveCache(g, 2), mix)
    a_amat = adaptive.amat(timing, adaptive=True)
    impr = 100.0 * (s_amat - a_amat) / s_amat
    print(
        f"partitioned adaptive:    miss rate {adaptive.miss_rate:.4f} "
        f"(AMAT {a_amat:.2f} = {impr:+.1f}% vs static)"
    )

    print("\nPer-thread miss rates (shared/conventional vs shared/multi-index):")
    for t, name in enumerate((w0, w1)):
        print(
            f"  thread {t} ({name:10s}): {base.thread_miss_rate(t):.4f} "
            f"-> {multi.thread_miss_rate(t):.4f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
