"""Observability surface of the job server.

One :class:`ServiceStats` instance lives for the daemon's lifetime and is
updated by the scheduler and the connection handlers.  ``health`` answers
come from :meth:`ServiceStats.health`, ``stats`` answers from
:meth:`ServiceStats.snapshot` — uptime, request counts by type, queue
depth and in-flight work, coalescing / backpressure / cache counters, and
per-request-type latency histograms.

The histogram is a fixed logarithmic bucket ladder (sub-millisecond up to
minutes): cheap to update, safe to snapshot from the event loop, and
good enough for p50/p90/p99 service-latency estimates (each quantile is
reported as the upper bound of the bucket it lands in).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["LatencyHistogram", "ServiceStats"]


class LatencyHistogram:
    """Log-scale latency histogram (seconds) with quantile estimates."""

    #: Bucket upper bounds in seconds: 0.5 ms · 2^i, topped by +inf.
    BOUNDS: tuple[float, ...] = tuple(0.0005 * 2**i for i in range(20)) + (
        float("inf"),
    )

    def __init__(self) -> None:
        self.counts = [0] * len(self.BOUNDS)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        for i, bound in enumerate(self.BOUNDS):
            if seconds <= bound:
                self.counts[i] += 1
                break
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                bound = self.BOUNDS[i]
                return self.max_seconds if bound == float("inf") else bound
        return self.max_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean_seconds": (
                self.total_seconds / self.count if self.count else 0.0
            ),
            "max_seconds": self.max_seconds,
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p99_seconds": self.quantile(0.99),
            "buckets": {
                ("+inf" if b == float("inf") else f"{b:g}"): n
                for b, n in zip(self.BOUNDS, self.counts)
                if n
            },
        }


@dataclass
class ServiceStats:
    """Daemon-lifetime counters; single-threaded updates from the event loop."""

    started_at: float = field(default_factory=time.time)

    # Connections.
    connections_open: int = 0
    connections_total: int = 0

    # Requests by type (terminal frames sent).
    requests: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)

    # Cell-level scheduler counters.
    cells_submitted: int = 0
    #: Joined an already-in-flight identical computation (single-flight).
    cells_coalesced: int = 0
    #: Rejected at admission (queue-depth backpressure).
    cells_rejected: int = 0
    #: Answered from the content-addressed result cache.
    cells_cache_hits: int = 0
    #: Actually simulated by the worker pool.
    cells_executed: int = 0
    cells_failed: int = 0
    #: Flights abandoned because every waiter left (disconnect/deadline).
    cells_cancelled: int = 0
    #: Waits that hit their per-request deadline.
    deadline_timeouts: int = 0
    #: Multi-member sweep families executed by experiment runs (see
    #: :mod:`repro.experiments.engine.families`).
    families_batched: int = 0
    #: Cells answered through those batched families.
    cells_batched: int = 0

    #: Latency histograms per request type ("cell", "experiment", ...).
    latency: dict[str, LatencyHistogram] = field(default_factory=dict)

    # -- update helpers -----------------------------------------------------------

    def count_request(self, rtype: str) -> None:
        self.requests[rtype] = self.requests.get(rtype, 0) + 1

    def count_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def observe_latency(self, rtype: str, seconds: float) -> None:
        hist = self.latency.get(rtype)
        if hist is None:
            hist = self.latency[rtype] = LatencyHistogram()
        hist.observe(seconds)

    # -- derived views ------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    @property
    def cache_hit_ratio(self) -> float:
        settled = self.cells_cache_hits + self.cells_executed
        return self.cells_cache_hits / settled if settled else 0.0

    def health(self, version: str, extra: dict[str, Any] | None = None) -> dict:
        doc = {
            "status": "ok",
            "server": "repro.service",
            "version": version,
            "pid": os.getpid(),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "connections_open": self.connections_open,
        }
        if extra:
            doc.update(extra)
        return doc

    def snapshot(
        self, queue_depth: int, in_flight: int, extra: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "cells": {
                "submitted": self.cells_submitted,
                "coalesced": self.cells_coalesced,
                "rejected": self.cells_rejected,
                "cache_hits": self.cells_cache_hits,
                "executed": self.cells_executed,
                "failed": self.cells_failed,
                "cancelled": self.cells_cancelled,
                "deadline_timeouts": self.deadline_timeouts,
                "cache_hit_ratio": round(self.cache_hit_ratio, 6),
                "families_batched": self.families_batched,
                "cells_batched": self.cells_batched,
            },
            "latency": {k: h.as_dict() for k, h in sorted(self.latency.items())},
        }
        if extra:
            doc.update(extra)
        return doc
