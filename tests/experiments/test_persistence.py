"""ExperimentResult save/load round-trip tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult, load_result, save_result


@pytest.fixture
def result() -> ExperimentResult:
    r = ExperimentResult("figZ", "demo", columns=["A", "B"], unit="%")
    r.add_row("x", {"A": 1.5, "B": -2.0})
    r.add_row("y", {"A": 3.0})
    r.note("a note")
    r.arrays["per_set"] = np.arange(16, dtype=np.int64)
    r.arrays["scalar"] = 42
    r.arrays["unserialisable"] = object()
    return r


class TestRoundTrip:
    def test_json_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "fig.json")
        back = load_result(path)
        assert back.experiment_id == "figZ"
        assert back.columns == ["A", "B"]
        assert back.rows == result.rows
        assert back.notes == ["a note"]
        assert back.unit == "%"

    def test_arrays_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "fig.json")
        back = load_result(path)
        np.testing.assert_array_equal(back.arrays["per_set"], np.arange(16))
        assert back.arrays["scalar"] == 42
        assert "unserialisable" not in back.arrays

    def test_no_npz_when_no_arrays(self, tmp_path):
        r = ExperimentResult("f", "t", ["A"])
        r.add_row("x", {"A": 1.0})
        path = save_result(r, tmp_path / "f.json")
        assert not path.with_suffix(".npz").exists()
        assert load_result(path).rows == {"x": {"A": 1.0}}

    def test_rendering_survives_round_trip(self, result, tmp_path):
        from repro.experiments.report import render_table

        back = load_result(save_result(result, tmp_path / "f.json"))
        assert render_table(back) == render_table(result)
