"""Givargis, Givargis-XOR and Patel trainer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.fastsim import direct_mapped_miss_count
from repro.core.indexing import (
    GivargisIndexing,
    GivargisXorIndexing,
    PatelIndexing,
)
from repro.core.indexing.bit_select import bit_matrix, candidate_bit_positions
from repro.core.indexing.givargis import (
    bit_correlation_matrix,
    bit_quality,
    select_bits_greedy,
)
from repro.core.indexing.patel import exhaustive_best_positions
from repro.trace import hot_set_trace, uniform_trace

G = PAPER_L1_GEOMETRY


class TestQualityMetric:
    def test_balanced_bit_has_quality_one(self):
        bits = np.array([[0], [1], [0], [1]], dtype=np.uint8)
        assert bit_quality(bits)[0] == 1.0

    def test_constant_bit_has_quality_zero(self):
        bits = np.zeros((10, 1), dtype=np.uint8)
        assert bit_quality(bits)[0] == 0.0

    def test_skewed_bit(self):
        # 3 ones, 1 zero -> Q = 1/3 (Eq. 1).
        bits = np.array([[1], [1], [1], [0]], dtype=np.uint8)
        assert bit_quality(bits)[0] == pytest.approx(1 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bit_quality(np.zeros((0, 3), dtype=np.uint8))


class TestCorrelationMetric:
    def test_identical_bits_fully_correlated(self):
        col = np.array([0, 1, 1, 0], dtype=np.uint8)
        bits = np.stack([col, col], axis=1)
        corr = bit_correlation_matrix(bits)
        assert corr[0, 1] == 0.0  # Eq. 2: identical => min(E,D)/max = 0/4

    def test_complementary_bits_fully_correlated(self):
        col = np.array([0, 1, 1, 0], dtype=np.uint8)
        bits = np.stack([col, 1 - col], axis=1)
        assert bit_correlation_matrix(bits)[0, 1] == 0.0

    def test_independent_bits(self):
        # All four combinations equally: E == D == 2 => C = 1.
        bits = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        assert bit_correlation_matrix(bits)[0, 1] == 1.0

    def test_symmetric(self, rng):
        bits = rng.integers(0, 2, size=(200, 6)).astype(np.uint8)
        corr = bit_correlation_matrix(bits)
        np.testing.assert_allclose(corr, corr.T)

    def test_matches_naive_counting(self, rng):
        bits = rng.integers(0, 2, size=(100, 4)).astype(np.uint8)
        corr = bit_correlation_matrix(bits)
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                equal = int((bits[:, i] == bits[:, j]).sum())
                diff = 100 - equal
                expected = min(equal, diff) / max(equal, diff)
                assert corr[i, j] == pytest.approx(expected)


class TestGreedySelection:
    def test_picks_highest_quality_first(self):
        quality = np.array([0.2, 0.9, 0.5])
        corr = np.ones((3, 3)) - np.eye(3)
        # corr has zero diagonal (self-correlated) per bit_correlation_matrix.
        np.fill_diagonal(corr, 0.0)
        chosen = select_bits_greedy(quality, corr, 2)
        assert chosen[0] == 1

    def test_damps_correlated_bits(self):
        # Bit 1 best; bit 2 nearly as good but duplicates bit 1; bit 0 poor
        # but independent -> selection should be [1, 0].
        quality = np.array([0.5, 1.0, 0.99])
        corr = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        assert select_bits_greedy(quality, corr, 2) == [1, 0]

    def test_requesting_too_many_raises(self):
        with pytest.raises(ValueError):
            select_bits_greedy(np.ones(3), np.ones((3, 3)), 4)


class TestGivargisScheme:
    def test_requires_fit(self):
        s = GivargisIndexing(G)
        with pytest.raises(RuntimeError):
            s.index_of(0x1000)

    def test_fit_selects_index_bit_count(self, hot):
        s = GivargisIndexing(G).fit(hot.addresses)
        assert len(s.positions) == G.index_bits
        assert len(set(s.positions)) == G.index_bits

    def test_excludes_offset_bits_by_default(self, hot):
        s = GivargisIndexing(G).fit(hot.addresses)
        assert all(p >= G.offset_bits for p in s.positions)

    def test_offset_bits_admissible_when_enabled(self):
        # Unique addresses whose *only* varying bits are in the offset.
        addrs = np.arange(32, dtype=np.uint64) + np.uint64(0x1000)
        s = GivargisIndexing(G, include_offset_bits=True).fit(addrs)
        assert any(p < G.offset_bits for p in s.positions)

    def test_vectorised_matches_scalar(self, hot):
        s = GivargisIndexing(G).fit(hot.addresses)
        sample = hot.addresses[:200]
        np.testing.assert_array_equal(
            s.indices_of(sample), [s.index_of(int(a)) for a in sample]
        )

    def test_contiguous_footprint_recovers_conventional_bits(self):
        """Over a contiguous unique range, the balanced bits are exactly the
        conventional index bits, so Givargis reproduces modulo's partition."""
        addrs = (np.arange(32 * 1024, dtype=np.uint64) + np.uint64(0x40000))
        s = GivargisIndexing(G).fit(addrs)
        assert set(s.positions) == set(range(5, 15))

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            GivargisIndexing(G).fit(np.array([], dtype=np.uint64))


class TestGivargisXor:
    def test_positions_are_tag_bits(self, hot):
        s = GivargisXorIndexing(G).fit(hot.addresses)
        assert all(p >= G.offset_bits + G.index_bits for p in s.positions)

    def test_zero_selected_bits_reduces_to_modulo(self, hot):
        s = GivargisXorIndexing(G).fit(hot.addresses)
        # An address whose tag is all-zero XORs nothing in.
        addr = 0x7FFF
        assert s.index_of(addr) == G.index_of(addr)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GivargisXorIndexing(G).index_of(0)

    def test_narrow_geometry_rejected(self):
        # index 10 bits but only 1 tag bit available.
        g = CacheGeometry(32 * 1024, 32, 1, address_bits=16)
        with pytest.raises(ValueError):
            GivargisXorIndexing(g)


class TestPatel:
    def test_greedy_matches_exhaustive_on_tiny_pool(self):
        g = CacheGeometry(64, 16, 1, address_bits=12)  # 4 sets, 2 index bits
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 1 << 12, size=400, dtype=np.uint64)
        s = PatelIndexing(g, max_swap_moves=500).fit(addrs)
        blocks = addrs >> np.uint64(g.offset_bits)
        block_candidates = tuple(
            p - g.offset_bits for p in candidate_bit_positions(g) if p >= g.offset_bits
        )
        _, best_cost = exhaustive_best_positions(blocks, block_candidates, g.index_bits)
        assert s.cost_ == best_cost

    def test_beats_or_ties_modulo(self):
        """The search starts from scratch but cannot end worse than the cost
        of the best greedy choice; verify it beats modulo on an adversarial
        power-of-two-strided trace."""
        g = CacheGeometry(1024, 32, 1, address_bits=20)
        stride = 1024  # capacity-aliasing stride under modulo
        addrs = (np.arange(2000, dtype=np.uint64) % np.uint64(8)) * np.uint64(stride)
        s = PatelIndexing(g).fit(addrs)
        blocks = (addrs >> np.uint64(g.offset_bits)).astype(np.int64)
        modulo_cost = direct_mapped_miss_count(blocks, blocks & (g.num_sets - 1))
        assert s.cost_ is not None and s.cost_ <= modulo_cost

    def test_positions_valid(self, hot):
        g = CacheGeometry(1024, 32, 1, address_bits=24)
        addrs = hot.addresses & np.uint64((1 << 24) - 1)
        s = PatelIndexing(g, max_swap_moves=4).fit(addrs)
        assert len(set(s.positions)) == g.index_bits
        idx = s.indices_of(addrs[:100])
        assert idx.min() >= 0 and idx.max() < g.num_sets
