"""Shared fixtures for the cluster tests.

Each test gets a real (loopback TCP) cluster, fully in-process: N
thread-mode worker :class:`ReproServer` daemons plus one
:class:`ClusterRouter`, each on its own event loop in its own thread,
every cache rooted under ``tmp_path``.  Workers and router share one
cluster-visible shared-store directory by default, so cross-node warm
hits are exercised exactly as in production.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cluster import ClusterRouter
from repro.experiments.config import PaperConfig
from repro.service import ReproServer, ServiceClient

#: Tiny-but-real simulation size: fast, yet every scheme still differs.
REFS = 1500
SCALE = 0.05


@pytest.fixture
def cluster_config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=REFS,
        workload_scale=SCALE,
        jobs=1,
        # Tests that compute a local reference result must never touch the
        # repo's default ``.trace_cache``.
        trace_cache_dir=tmp_path / "local" / "traces",
    )


class DaemonHandle:
    """One daemon (worker or router) on a private event loop thread."""

    def __init__(self, server):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-test-daemon", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._started.set()  # unblock start() even on startup failure
            self._loop.close()

    def start(self) -> "DaemonHandle":
        self._thread.start()
        assert self._started.wait(30), "daemon did not start in 30s"
        assert self.server.port, "daemon has no bound port"
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def addr(self) -> str:
        return f"127.0.0.1:{self.server.port}"

    @property
    def stats(self):
        return self.server.stats

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server._stopping.set)
            self._thread.join(timeout)
        assert not self._thread.is_alive(), "daemon thread did not exit"


class Cluster:
    """A router plus its workers, with per-node cache roots."""

    def __init__(
        self,
        root: Path,
        config: PaperConfig,
        n_workers: int,
        *,
        store: str = "shared",
        shared_dir: Path | None = None,
        probe_interval: float = 0.2,
        probe_timeout: float = 1.0,
        router_store: bool = False,
        worker_kwargs: dict | None = None,
        router_kwargs: dict | None = None,
    ):
        self.shared_dir = (
            shared_dir if shared_dir is not None else root / "shared-results"
        )
        self.workers: list[DaemonHandle] = []
        for i in range(n_workers):
            wconfig = replace(
                config,
                trace_cache_dir=root / f"worker{i}" / "traces",
                result_store=store,
                shared_store_dir=self.shared_dir if store == "shared" else None,
            )
            handle = DaemonHandle(
                ReproServer(
                    wconfig,
                    port=0,
                    workers=1,
                    use_processes=False,
                    **(worker_kwargs or {}),
                )
            )
            self.workers.append(handle.start())
        rconfig = replace(
            config,
            trace_cache_dir=root / "router" / "traces",
            result_store=store if router_store else "local",
            shared_store_dir=self.shared_dir if router_store else None,
            use_result_cache=router_store,
        )
        self.router = DaemonHandle(
            ClusterRouter(
                [w.addr for w in self.workers],
                rconfig,
                port=0,
                probe_interval=probe_interval,
                probe_timeout=probe_timeout,
                **(router_kwargs or {}),
            )
        ).start()

    def client(self, **kwargs) -> ServiceClient:
        return self.router.client(**kwargs)

    def worker_stats(self):
        return [w.stats for w in self.workers]

    def total_executed(self) -> int:
        return sum(w.stats.cells_executed for w in self.workers)

    def stop(self) -> None:
        self.router.stop()
        for worker in self.workers:
            worker.stop()


@pytest.fixture
def make_cluster(tmp_path, cluster_config):
    """Factory: ``make_cluster(n_workers, **Cluster kwargs)``."""
    clusters: list[Cluster] = []

    def _make(n_workers: int, config: PaperConfig | None = None, **kwargs) -> Cluster:
        # A private root per cluster: two clusters in one test must not
        # alias their node-local tiers (cross-node warm tests share only
        # the shared store, passed explicitly).
        cluster = Cluster(
            tmp_path / f"c{len(clusters)}",
            config if config is not None else cluster_config,
            n_workers,
            **kwargs,
        )
        clusters.append(cluster)
        return cluster

    yield _make
    for cluster in clusters:
        cluster.stop()
