"""Differential tests: sweep batching ≡ per-cell execution, bit for bit.

The sweep-batching PR promises that answering a whole cell family from one
pass changes *nothing* observable: not a model string, not a per-set
histogram, not an ``extra`` hit-class dict.  Three layers are pinned, in
the same style as ``test_fastsim_lru_differential.py``:

* :func:`repro.core.fastsim.lru_sweep_miss_flags` against repeated
  single-``ways`` :func:`~repro.core.fastsim.lru_miss_flags` calls, for
  every registered indexing scheme and the adversarial trace zoo;
* :func:`repro.core.simulator.simulate_lru_sweep` against the per-cell
  entry points it impersonates — :func:`~repro.core.simulator.simulate_indexing`
  for ``style="direct"`` members and
  :func:`~repro.core.simulator.simulate_set_associative` for
  ``style="setassoc"`` members over fixed-sets geometries — full
  :class:`~repro.core.simulator.SimulationResult` equality including
  per-set counts;
* the engine: fig 4/6/7/8-shaped and ext-assoc-shaped cell grids run
  batched (``engine="auto"``, ``batch_sweeps=True``, the decode and
  Mattson axes) against per-cell ``engine="sequential"`` reference
  execution with batching disabled — every cell's stored result identical.

Any new batching axis added to the engine must extend this suite
(DESIGN.md, "Differential-testing contract").
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.address import CacheGeometry
from repro.core.fastsim import lru_miss_flags, lru_sweep_miss_flags
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import (
    simulate_indexing,
    simulate_lru_sweep,
    simulate_set_associative,
)
from repro.experiments import PaperConfig
from repro.experiments.engine import make_cell, run_cells
from repro.trace import Trace

TINY = CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)
SMALL = CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1)

SWEEP_WAYS = [1, 2, 3, 4, 8, 16]


# -- trace zoo (mirrors the LRU differential suite) --------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << geometry.address_bits, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def all_one_set_trace(geometry: CacheGeometry, n: int = 512) -> Trace:
    stride = np.uint64(geometry.num_sets * geometry.line_bytes)
    base = np.uint64(3 * geometry.line_bytes)
    idx = np.arange(n, dtype=np.uint64)
    addrs = (base + idx * stride) % np.uint64(1 << geometry.address_bits)
    return Trace(addrs, name="one_set")


def cyclic_set_trace(geometry: CacheGeometry, period: int, n: int = 900) -> Trace:
    stride = np.uint64(geometry.num_sets * geometry.line_bytes)
    base = np.uint64(5 * geometry.line_bytes)
    idx = (np.arange(n) % period).astype(np.uint64)
    addrs = (base + idx * stride) % np.uint64(1 << geometry.address_bits)
    return Trace(addrs, name=f"cycle{period}")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        all_one_set_trace(geometry),
        cyclic_set_trace(geometry, 3),
        cyclic_set_trace(geometry, 9),
        Trace(np.empty(0, dtype=np.uint64), name="empty"),
        Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single"),
    ]


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    """One instance of every registered scheme, trainables fitted."""
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    factories = [
        lambda: ModuloIndexing(geometry),
        lambda: XorIndexing(geometry),
        lambda: OddMultiplierIndexing(geometry, 9),
        lambda: PrimeModuloIndexing(geometry),
        lambda: BitSelectIndexing(geometry, bit_positions),
        lambda: GivargisIndexing(geometry).fit(fit_addrs),
        lambda: GivargisXorIndexing(geometry).fit(fit_addrs),
        lambda: PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]
    schemes = []
    for make in factories:
        try:
            schemes.append(make())
        except ValueError:
            pass
    return schemes


def fixed_sets_geometry(base: CacheGeometry, ways: int) -> CacheGeometry:
    """Same num_sets/line size at ``ways`` — the sweep's exactness condition."""
    return base.with_fixed_sets(ways)


def assert_results_identical(batched, single, ctx: str) -> None:
    """Full SimulationResult equality — the bit-identity contract."""
    assert batched.model == single.model, ctx
    assert batched.trace_name == single.trace_name, ctx
    assert batched.accesses == single.accesses, ctx
    assert batched.hits == single.hits, ctx
    assert batched.misses == single.misses, ctx
    assert batched.lookup_cycles == single.lookup_cycles, ctx
    assert batched.extra == single.extra, ctx
    np.testing.assert_array_equal(
        batched.slot_accesses, single.slot_accesses, err_msg=ctx
    )
    np.testing.assert_array_equal(batched.slot_hits, single.slot_hits, err_msg=ctx)
    np.testing.assert_array_equal(batched.slot_misses, single.slot_misses, err_msg=ctx)


# -- kernel: one stack-distance pass ≡ one lru_miss_flags call per ways ------------


class TestSweepFlagsVsSingleWays:
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_all_schemes_all_traces(self, geometry):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
                indices = scheme.indices_of(trace.addresses)
                flags = lru_sweep_miss_flags(blocks, indices, SWEEP_WAYS)
                assert sorted(flags) == sorted(SWEEP_WAYS)
                for ways in SWEEP_WAYS:
                    np.testing.assert_array_equal(
                        flags[ways],
                        lru_miss_flags(blocks, indices, ways),
                        err_msg=f"{scheme.name}/{trace.name}/{ways}way",
                    )

    def test_duplicate_ways_deduplicated(self):
        trace = random_trace(SMALL, n=1000, seed=5)
        blocks = trace.blocks(SMALL.offset_bits).astype(np.int64)
        indices = ModuloIndexing(SMALL).indices_of(trace.addresses)
        flags = lru_sweep_miss_flags(blocks, indices, [4, 2, 4, 2])
        assert sorted(flags) == [2, 4]
        np.testing.assert_array_equal(flags[2], lru_miss_flags(blocks, indices, 2))

    def test_empty_ways_list(self):
        trace = random_trace(SMALL, n=100, seed=5)
        blocks = trace.blocks(SMALL.offset_bits).astype(np.int64)
        indices = ModuloIndexing(SMALL).indices_of(trace.addresses)
        assert lru_sweep_miss_flags(blocks, indices, []) == {}

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            lru_sweep_miss_flags(np.array([1]), np.array([0]), [2, 0])


# -- simulate_lru_sweep ≡ the per-cell entry points it impersonates ----------------


class TestSweepVsPerCellSimulators:
    @pytest.mark.parametrize("base", [TINY, SMALL], ids=["tiny", "small"])
    def test_setassoc_members_all_schemes_all_traces(self, base):
        """Every scheme, every trace: sweep members ≡ simulate_set_associative
        over the matching fixed-sets geometry, per-set counts included."""
        fit = random_trace(base, n=2000, seed=99)
        specs = [(w, "setassoc") for w in (1, 2, 4, 8)]
        for scheme in scheme_lineup(base, fit):
            for trace in trace_zoo(base):
                batched = simulate_lru_sweep(scheme, trace, base, specs)
                for (ways, _), got in zip(specs, batched):
                    g = fixed_sets_geometry(base, ways)
                    want = simulate_set_associative(scheme, trace, g, ways=ways)
                    assert_results_identical(
                        got, want, f"{scheme.name}/{trace.name}/{ways}way"
                    )

    @pytest.mark.parametrize("base", [TINY, SMALL], ids=["tiny", "small"])
    def test_direct_members_all_schemes(self, base):
        """style="direct" reproduces simulate_indexing's packaging exactly —
        including the always-present direct_hits key."""
        fit = random_trace(base, n=2000, seed=99)
        for scheme in scheme_lineup(base, fit):
            for trace in trace_zoo(base):
                (got,) = simulate_lru_sweep(scheme, trace, base, [(1, "direct")])
                want = simulate_indexing(scheme, trace, base)
                assert_results_identical(got, want, f"{scheme.name}/{trace.name}")

    def test_mixed_direct_and_setassoc_sweep(self):
        """The ext-assoc shape: one direct baseline + a k-way ladder."""
        trace = random_trace(SMALL, n=5000, seed=17)
        scheme = ModuloIndexing(SMALL)
        specs = [(1, "direct"), (2, "setassoc"), (4, "setassoc"), (8, "setassoc")]
        batched = simulate_lru_sweep(scheme, trace, SMALL, specs)
        assert_results_identical(
            batched[0], simulate_indexing(scheme, trace, SMALL), "direct member"
        )
        for (ways, _), got in zip(specs[1:], batched[1:]):
            g = fixed_sets_geometry(SMALL, ways)
            assert_results_identical(
                got,
                simulate_set_associative(scheme, trace, g, ways=ways),
                f"{ways}way member",
            )
        # Monotonicity sanity: more ways at fixed sets never adds misses.
        misses = [r.misses for r in batched]
        assert misses == sorted(misses, reverse=True)

    def test_results_in_spec_order(self):
        trace = random_trace(SMALL, n=800, seed=23)
        scheme = XorIndexing(SMALL)
        specs = [(8, "setassoc"), (1, "setassoc"), (2, "setassoc")]
        results = simulate_lru_sweep(scheme, trace, SMALL, specs)
        assert [r.model for r in results] == [
            f"set_associative[{scheme.name},{w}way]" for w, _ in specs
        ]

    def test_rejects_direct_with_many_ways(self):
        trace = random_trace(SMALL, n=10)
        with pytest.raises(ValueError, match="direct"):
            simulate_lru_sweep(ModuloIndexing(SMALL), trace, SMALL, [(2, "direct")])

    def test_rejects_unknown_style(self):
        trace = random_trace(SMALL, n=10)
        with pytest.raises(ValueError, match="style"):
            simulate_lru_sweep(ModuloIndexing(SMALL), trace, SMALL, [(2, "plru")])

    def test_rejects_nonpositive_ways(self):
        trace = random_trace(SMALL, n=10)
        with pytest.raises(ValueError):
            simulate_lru_sweep(ModuloIndexing(SMALL), trace, SMALL, [(0, "setassoc")])


# -- engine: batched cell grids ≡ per-cell sequential reference --------------------

REFS = 3000


@pytest.fixture
def engine_config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=REFS,
        workload_scale=0.05,
        trace_cache_dir=tmp_path / "traces",
        use_result_cache=False,
    )


def grid(kind_labels, benches, config):
    """Cells in figure declaration order: baseline-ish cell first per bench."""
    return [
        make_cell(kind, bench, label, config)
        for bench in benches
        for kind, label in kind_labels
    ]


#: (figure id, cell shape) — trimmed to two benches each to stay tier-1 fast,
#: but preserving every kind/label mix the real figures declare.
FIGURE_SHAPES = {
    "fig4": [
        ("baseline", "baseline"),
        ("indexing", "XOR"),
        ("indexing", "Odd_Multiplier"),
        ("indexing", "Prime_Modulo"),
        ("indexing", "Givargis"),
        ("indexing", "Givargis_Xor"),
    ],
    "fig6_7": [
        ("baseline", "baseline"),
        ("progassoc", "Adaptive_Cache"),
        ("progassoc", "B_Cache"),
        ("progassoc", "Column_associative"),
    ],
    "fig8": [
        ("colassoc", "ColAssoc_Base"),
        ("colassoc", "ColAssoc_XOR"),
        ("colassoc", "ColAssoc_Odd_Multiplier"),
        ("colassoc", "ColAssoc_Prime_Modulo"),
    ],
    "ext_assoc": [
        ("baseline", "baseline"),
        ("assocsweep", "2way"),
        ("assocsweep", "4way"),
        ("assocsweep", "8way"),
        ("assocsweep", "16way"),
    ],
}


class TestEngineBatchedVsPerCell:
    def _run_both(self, shape, benches, engine_config, jobs=1):
        batched_cfg = replace(engine_config, engine="auto", batch_sweeps=True)
        percell_cfg = replace(engine_config, engine="sequential", batch_sweeps=False)
        batched, bstats = run_cells(
            grid(shape, benches, batched_cfg), batched_cfg, jobs=jobs
        )
        percell, pstats = run_cells(
            grid(shape, benches, percell_cfg), percell_cfg, jobs=1
        )
        assert list(batched) == list(percell)
        for key in batched:
            assert_results_identical(batched[key], percell[key], str(key))
        return bstats, pstats

    @pytest.mark.parametrize("fig", ["fig4", "fig6_7", "fig8"])
    def test_figure_families_bit_identical(self, fig, engine_config):
        bstats, pstats = self._run_both(
            FIGURE_SHAPES[fig], ("crc", "fft"), engine_config
        )
        # These figures batch on the decode axis: every cell travels in a family.
        assert bstats.cells_batched == bstats.cells_total
        assert bstats.families_batched == 2  # one family per bench
        assert pstats.cells_batched == 0 and pstats.families_batched == 0

    def test_mattson_family_bit_identical(self, engine_config):
        """The ext-assoc shape: baseline + assocsweep ladder is one shared
        stack-distance pass under auto, per-cell under sequential."""
        bstats, _ = self._run_both(
            FIGURE_SHAPES["ext_assoc"], ("crc",), engine_config
        )
        assert bstats.families_batched == 1
        assert bstats.cells_batched == len(FIGURE_SHAPES["ext_assoc"])

    def test_mattson_family_bit_identical_on_pool(self, engine_config):
        """jobs=2 exercises the process-pool family path."""
        self._run_both(FIGURE_SHAPES["ext_assoc"], ("crc", "fft"), engine_config, jobs=2)

    def test_sequential_engine_disables_mattson_axis_only(self, engine_config):
        """engine="sequential" + batching keeps decode families (exact by
        construction) but never routes cells into a shared kernel pass."""
        cfg = replace(engine_config, engine="sequential", batch_sweeps=True)
        cells = grid(FIGURE_SHAPES["ext_assoc"], ("crc",), cfg)
        results, stats = run_cells(cells, cfg, jobs=1)
        ref_cfg = replace(engine_config, engine="sequential", batch_sweeps=False)
        reference, _ = run_cells(grid(FIGURE_SHAPES["ext_assoc"], ("crc",), ref_cfg), ref_cfg, jobs=1)
        for key in results:
            assert_results_identical(results[key], reference[key], str(key))
