"""B-cache tests (paper Section III.C, Zhang ISCA'06)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import BalancedCache, DirectMappedCache, SetAssociativeCache
from repro.core.simulator import simulate
from repro.trace import Trace, ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestParameters:
    def test_eq6_eq7_relationship(self):
        c = BalancedCache(G, mapping_factor=2, bas=2)
        # Eq. (7): BAS = 2^OI / 2^NPI.
        assert 2 ** G.index_bits // 2**c.npi_bits == 2
        # Eq. (6): MF = 2^(PI+NPI) / 2^OI.
        assert 2 ** (c.pi_bits + c.npi_bits) // 2 ** G.index_bits == 2
        assert c.num_clusters == 512

    def test_mf1_is_direct_mapped(self, zipf):
        """MF = 1 gives each PI value exactly one line: identical behaviour
        to the conventional direct-mapped cache."""
        b = simulate(BalancedCache(G, mapping_factor=1, bas=2), zipf)
        d = simulate(DirectMappedCache(G), zipf)
        assert b.misses == d.misses

    def test_rejects_bad_bas(self):
        with pytest.raises(ValueError):
            BalancedCache(G, bas=3)
        with pytest.raises(ValueError):
            BalancedCache(G, bas=1)

    def test_rejects_bad_mf(self):
        with pytest.raises(ValueError):
            BalancedCache(G, mapping_factor=3)

    def test_rejects_multiway_geometry(self):
        with pytest.raises(ValueError):
            BalancedCache(CacheGeometry(1024, 32, 2))


class TestDecoderSemantics:
    def test_same_pi_class_conflicts_like_direct_mapped(self):
        """Blocks sharing PI+NPI bits are forced victims of each other."""
        c = BalancedCache(G, mapping_factor=2, bas=2)
        # Same cluster, same PI: blocks differing only above PI+NPI bits.
        span = 1 << (c.npi_bits + c.pi_bits)
        a = 0
        b = span * 32  # byte address: block differs above the PI field
        c.access(a)
        r = c.access(b)
        assert not r.hit and r.evicted_block == 0

    def test_different_pi_classes_share_cluster(self):
        """Blocks in one cluster but different PI classes coexist (the
        balancing effect) — the ping-pong that kills a DM cache is fixed."""
        c = BalancedCache(G, mapping_factor=2, bas=2)
        a = 0
        b = 32 * 1024  # same cluster, PI differs (bit OI flips => PI bit set)
        assert c.pi_of(c.geometry.block_address(a)) != c.pi_of(c.geometry.block_address(b))
        c.access(a)
        c.access(b)
        assert c.access(a).hit
        assert c.access(b).hit

    def test_between_dm_and_set_associative(self, zipf):
        dm = simulate(DirectMappedCache(G), zipf).misses
        b22 = simulate(BalancedCache(G, mapping_factor=2, bas=2), zipf).misses
        sa2 = simulate(SetAssociativeCache(G.with_ways(2)), zipf).misses
        # Balanced cache sits between the direct-mapped cache and the
        # full 2-way set-associative cache of the same capacity.
        assert b22 <= dm * 1.02
        assert b22 >= sa2 * 0.98

    def test_large_bas_approaches_8way(self):
        """Zhang's claim: a big enough operating point tracks 8-way."""
        t = zipf_trace(20_000, seed=4)
        b = simulate(BalancedCache(G, mapping_factor=8, bas=8), t).misses
        sa8 = simulate(SetAssociativeCache(G.with_ways(8)), t).misses
        assert abs(b - sa8) / sa8 < 0.15

    def test_invariants_under_stress(self):
        rng = np.random.default_rng(9)
        c = BalancedCache(G, mapping_factor=2, bas=4)
        addrs = (rng.integers(0, 32, size=4000) * 32 * 1024
                 + rng.integers(0, 8, size=4000) * 32)
        for a in addrs:
            c.access(int(a))
        c.check_invariants()

    def test_flush(self):
        c = BalancedCache(G)
        c.access(0x1234)
        c.flush()
        assert c.contents() == set()


class TestStats:
    def test_line_granular_slots(self):
        c = BalancedCache(G, mapping_factor=2, bas=2)
        assert c.stats.num_slots == G.num_lines

    def test_ping_pong_fixed(self, ping_pong):
        dm = simulate(DirectMappedCache(G), ping_pong)
        b = simulate(BalancedCache(G), ping_pong)
        assert dm.miss_rate == 1.0
        assert b.miss_rate < 0.01
