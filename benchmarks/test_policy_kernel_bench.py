"""Policy-kernel canaries: set-decomposed replay vs the sequential engine.

Regression gates for the policy-axis PR (CI replays this file against the
committed ``BENCH_*.json`` baseline):

* the kernels: :func:`~repro.core.fastpolicy.simulate_policy_set_associative`
  under ``engine="auto"`` must stay well ahead of the sequential reference
  (driving the real :class:`~repro.core.caches.SetAssociativeCache` one
  access at a time) on a million-access trace — gated for FIFO and PLRU,
  the two kernels named in the PR contract, with the floor asserted
  *inside* the bench so the claim travels with the number;
* the engine: a cold ``run_cells`` pass over an ext-policy-shaped policy
  family (five policies, one set-decomposition) must beat the same grid
  executed per-cell with ``batch_sweeps=False`` + ``engine="sequential"``.

Bit-identity of everything measured here is locked by
``tests/core/test_fastpolicy_differential.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.fastpolicy import simulate_policy_set_associative
from repro.core.indexing import ModuloIndexing
from repro.experiments.engine import make_cell, run_cells
from repro.trace import zipf_trace

G4 = PAPER_L1_GEOMETRY.with_ways(4)
TRACE_1M = zipf_trace(1_000_000, seed=23)

#: The ext-policy shape: one policy family per (workload, scheme).
POLICY_LADDER = [f"modulo:{p}" for p in ("lru", "fifo", "plru", "mru", "lfu")]


def _kernel_gate(benchmark, policy: str, floor: float) -> None:
    scheme = ModuloIndexing(G4)
    result = benchmark.pedantic(
        lambda: simulate_policy_set_associative(scheme, TRACE_1M, G4, policy=policy),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)

    t0 = time.perf_counter()
    seq = simulate_policy_set_associative(
        scheme, TRACE_1M, G4, policy=policy, engine="sequential"
    )
    sequential_seconds = time.perf_counter() - t0
    assert seq.misses == result.misses
    speedup = sequential_seconds / benchmark.stats.stats.min
    assert speedup >= floor, (
        f"{policy} kernel only {speedup:.1f}x over the sequential engine"
    )


def test_fifo_kernel_1m(benchmark):
    """FIFO replay over a million accesses, 4-way (≥ 5× vs sequential).

    The kernel replays run heads per set with the f-mod-w rotation; the
    reference drives the cache model access by access.  Measured locally
    around 30×; the floor is the PR's contractual minimum.
    """
    _kernel_gate(benchmark, "fifo", 5.0)


def test_plru_kernel_1m(benchmark):
    """PLRU replay over a million accesses, 4-way (≥ 5× vs sequential).

    Precomputed per-way touch-op tuples replace the per-access tree walk;
    measured locally around 60×.
    """
    _kernel_gate(benchmark, "plru", 5.0)


def test_engine_policy_family_cold(benchmark, config):
    """Cold engine pass over one ext-policy family (≥ 3× vs unbatched
    sequential).

    ``run_cells`` with batching on answers the five-policy grid from one
    trace decode + one index computation + one set-decomposition pass; the
    reference is the same grid with ``batch_sweeps=False`` and
    ``engine="sequential"`` (cells, keys and results identical — only the
    execution plan differs).
    """
    cfg = replace(
        config, use_result_cache=False, geometry=config.geometry.with_ways(4)
    )
    cells = [make_cell("policysweep", "crc", lab, cfg) for lab in POLICY_LADDER]
    plain_cfg = replace(cfg, batch_sweeps=False, engine="sequential")
    run_cells(cells, plain_cfg, jobs=1)  # pre-warm the on-disk trace cache

    results, stats = benchmark.pedantic(
        lambda: run_cells(cells, cfg, jobs=1), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.families_batched == 1 and stats.cells_batched == len(cells)
    assert len(results) == len(cells)

    t0 = time.perf_counter()
    _, plain_stats = run_cells(cells, plain_cfg, jobs=1)
    per_cell_seconds = time.perf_counter() - t0
    assert plain_stats.cells_batched == 0
    speedup = per_cell_seconds / benchmark.stats.stats.min
    assert speedup >= 3.0, (
        f"batched policy family only {speedup:.1f}x over unbatched sequential"
    )
