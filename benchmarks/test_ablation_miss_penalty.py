"""Ablation: miss-penalty sensitivity of the AMAT conclusions.

The paper's AMAT formulas take a fixed MissPenalty; our timing model
defaults to 18 cycles.  This bench (a) sweeps the penalty to show the
figure-7 ordering is stable, and (b) *measures* the effective penalty with
the explicit L2 hierarchy instead of assuming it.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.core.amat import TimingModel, amat_column_associative, amat_direct_mapped
from repro.core.caches import ColumnAssociativeCache, DirectMappedCache
from repro.core.hierarchy import CacheHierarchy
from repro.core.simulator import simulate
from repro.experiments.runner import workload_trace


@pytest.mark.parametrize("penalty", [6.0, 18.0, 60.0])
def test_penalty_sweep(benchmark, config, penalty):
    trace = workload_trace("fft", config)
    g = config.geometry

    def run():
        dm = simulate(DirectMappedCache(g), trace)
        col_cache = ColumnAssociativeCache(g)
        col = simulate(col_cache, trace)
        timing = TimingModel(miss_penalty=penalty)
        base = amat_direct_mapped(dm.miss_rate, timing)
        amat = amat_column_associative(
            col.extra.get("rehash_hits", 0) / col.accesses,
            col.extra.get("rehash_misses", 0) / col.misses if col.misses else 0.0,
            col.miss_rate,
            timing,
        )
        return base, amat

    base, amat = run_once(benchmark, run)
    print(f"\npenalty={penalty}: DM AMAT {base:.3f} vs column {amat:.3f}")
    # On the conflict-heavy fft the ordering is penalty-invariant.
    assert amat < base


def test_measured_effective_penalty(benchmark, config):
    """The hierarchy-measured L1 miss cost lands between the L2 latency and
    memory latency — justifying the analytic constant."""
    trace = workload_trace("dijkstra", config)

    def run():
        h = CacheHierarchy(DirectMappedCache(config.geometry), timing=config.timing)
        return h.run(trace)

    res = run_once(benchmark, run)
    print(f"\nmeasured effective L1 miss penalty: {res.effective_miss_penalty:.1f} cycles")
    assert config.timing.miss_penalty <= res.effective_miss_penalty <= config.timing.l2_miss_penalty
