"""Shared fixtures: geometries, traces, and tmp trace caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.trace import Trace, hot_set_trace, ping_pong_trace, uniform_trace, zipf_trace


@pytest.fixture
def paper_geometry() -> CacheGeometry:
    return PAPER_L1_GEOMETRY


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 1 KiB / 16 B-line / 64-set cache: big enough to be interesting,
    small enough for brute-force cross-checks."""
    return CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """8 sets with a 16-bit address: exhaustive enumeration territory."""
    return CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)


@pytest.fixture
def zipf() -> Trace:
    return zipf_trace(20_000, seed=11)


@pytest.fixture
def uniform() -> Trace:
    return uniform_trace(20_000, seed=12)


@pytest.fixture
def hot() -> Trace:
    return hot_set_trace(20_000, seed=13)


@pytest.fixture
def ping_pong() -> Trace:
    return ping_pong_trace(4_000)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
