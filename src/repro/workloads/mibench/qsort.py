"""MiBench ``qsort`` — quicksort of strings through a pointer array.

Faithful to the benchmark (qsort_small sorts words with ``strcmp``): the
array being partitioned holds *pointers*; every comparison dereferences two
pointers and walks the string bytes until they differ.  The reference mix
is therefore pointer-array sweeps + scattered string-blob reads + recursion
stack — and, as the paper observes for qsort, accesses spread widely so
programmable associativity gains little, while hashed indexes can *regress*
by colliding the hot pointer array with the string heap (the paper's
Figure 4 shows qsort hurt by every indexing scheme).

The sort is real (verified against ``sorted()`` in the tests).

Bulk emission
-------------
The comparison outcomes depend only on the *words* (Python data), never on
anything the recorder observes, so the bulk path records the sort as a
compact op list — partition headers, scan steps, swaps, four ints each —
and renders the whole reference stream vectorised afterwards: per-scan
``strcmp`` pair counts come from one first-difference matrix computation
over all compared word pairs, and addresses/flags are assembled with
``repeat``/``cumsum`` ragged indexing into a single ``pattern_stream``.
The word list itself is produced by :func:`_words_fast`, which replays
NumPy's bounded-integer draws from one raw block (verified bit-identical,
with a fallback to the per-call reference loop).
"""

from __future__ import annotations

import numpy as np

from ...trace.memory import Array
from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["QsortWorkload"]

_WORD_BYTES = 24  # MiBench small words are short; blobs padded like malloc

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Op-list flush threshold (ints; 4 per op).  Large enough to amortise the
#: vectorised assembly, small enough that tiny ``ref_limit`` runs stop early.
_OPS_FLUSH = 1 << 15


def _words_ref(rng: np.random.Generator, n: int) -> list[str]:
    """The original per-call word generation (the reference)."""
    return [
        "".join(
            _ALPHABET[int(c)]
            for c in rng.integers(0, 26, size=int(rng.integers(3, 12)))
        )
        for _ in range(n)
    ]


def _words_fast(rng: np.random.Generator, n: int) -> list[str]:
    """Bit-identical words from one raw draw block.

    NumPy's ``Generator.integers`` with a sub-2³² range consumes the PCG64
    stream as 32-bit halves (low half first) and maps each through Lemire's
    multiply-shift, rejecting when the low 32 bits of ``half * range`` fall
    below ``(2**32 - range) % range`` — probability ≈ 2⁻³⁰ per draw.  We
    draw the whole block raw, apply the same map vectorised, and fall back
    to :func:`_words_ref` (restoring the generator state) if any draw in
    the block would have been rejected, so the result is exact by
    construction, not just with high probability.  Locked by the golden
    trace hashes and ``tests/workloads/test_qsort_words.py``.
    """
    state = rng.bit_generator.state
    raw = rng.bit_generator.random_raw(6 * n + 8)
    halves = np.empty(raw.size * 2, dtype=np.uint64)
    halves[0::2] = raw & np.uint64(0xFFFFFFFF)
    halves[1::2] = raw >> np.uint64(32)
    m9 = halves * np.uint64(9)
    m26 = halves * np.uint64(26)
    if (
        ((m9 & np.uint64(0xFFFFFFFF)) < np.uint64((2**32 - 9) % 9)).any()
        or ((m26 & np.uint64(0xFFFFFFFF)) < np.uint64((2**32 - 26) % 26)).any()
    ):
        rng.bit_generator.state = state  # pragma: no cover - p < 1e-3 per run
        return _words_ref(rng, n)  # pragma: no cover
    lengths = (m9 >> np.uint64(32)).astype(np.int64) + 3
    chars = ((m26 >> np.uint64(32)) + np.uint64(97)).astype(np.uint8)
    out: list[str] = []
    p = 0
    for _ in range(n):
        ln = int(lengths[p])
        p += 1
        out.append(chars[p : p + ln].tobytes().decode("latin-1"))
        p += ln
    return out


@register_workload
class QsortWorkload(Workload):
    name = "qsort"
    suite = "mibench"
    description = "Quicksort of random strings via a pointer array (strcmp)"
    access_pattern = "pointer-array partition scans + string-blob dereferences"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(3000, scale, minimum=16)
        ptr_arr = m.space.heap_array(8, n, "pointers")
        blobs = [m.space.heap_array(1, _WORD_BYTES, f"str{i}") for i in range(n)]
        words = _words_fast(m.rng, n) if m.bulk else _words_ref(m.rng, n)
        order = list(range(n))  # order[i] = which word ptr slot i points to
        if m.bulk:
            self._sort_vec(m, ptr_arr, blobs, words, order, n)
        else:
            self._sort(m, ptr_arr, blobs, words, order, 0, n - 1)
        m.builder.meta["sorted_head"] = [words[order[i]] for i in range(min(n, 6))]

    # -- bulk path ---------------------------------------------------------------

    def _sort_vec(
        self,
        m: Recorder,
        ptr_arr: Array,
        blobs: list[Array],
        words: list[str],
        order: list[int],
        n: int,
    ) -> None:
        # Every partition pushes its 64-byte frame at the same stack depth
        # (the scalar code pops before recursing), so the two spill slots
        # are constant addresses.
        frame = m.space.push_frame(64)
        lo_slot = frame.local("lo")
        hi_slot = frame.local("hi")
        m.space.pop_frame()
        # Word matrix padded with NUL: rows compare exactly like C strings
        # (words are ≤ 11 chars, so the scalar ``min(k, 23)`` clamp never
        # engages and the k-th strcmp pair is simply ``blob_base + k``).
        width = 12
        w_mat = np.zeros((n, width), dtype=np.uint8)
        for idx, w in enumerate(words):
            w_mat[idx, : len(w)] = np.frombuffer(
                w.encode("latin-1"), dtype=np.uint8
            )
        consts = (
            m,
            np.int64(ptr_arr.addr(0)),
            lo_slot,
            hi_slot,
            w_mat,
            np.array([len(w) for w in words], dtype=np.int64),
            np.array([b.addr(0) for b in blobs], dtype=np.int64),
        )
        ops: list[int] = []
        self._sort_ops(ops, consts, words, order, 0, n - 1)
        self._emit_ops(ops, consts)

    def _sort_ops(
        self,
        ops: list[int],
        consts: tuple,
        words: list[str],
        order: list[int],
        lo: int,
        hi: int,
    ) -> None:
        """The exact ``_sort`` control flow, recording ops instead of refs.

        Comparison results use Python string ordering, which matches the
        scalar ``_strcmp`` sign (C strcmp over NUL-terminated a–z strings);
        the per-byte load pairs are reconstructed later from the op list.
        """
        while lo < hi:
            mid = (lo + hi) // 2
            ops += (0, mid, 0, 0)
            pivot = order[mid]
            wp = words[pivot]
            i, j = lo, hi
            while i <= j:
                while True:
                    val = order[i]
                    ops += (1, i, val, pivot)
                    if words[val] >= wp:
                        break
                    i += 1
                while True:
                    val = order[j]
                    ops += (1, j, val, pivot)
                    if words[val] <= wp:
                        break
                    j -= 1
                if i <= j:
                    ops += (2, i, j, 0)
                    order[i], order[j] = order[j], order[i]
                    i += 1
                    j -= 1
            if len(ops) >= _OPS_FLUSH:
                self._emit_ops(ops, consts)
            # Recurse into the smaller side; iterate on the larger.
            if j - lo < hi - i:
                if lo < j:
                    self._sort_ops(ops, consts, words, order, lo, j)
                lo = i
            else:
                if i < hi:
                    self._sort_ops(ops, consts, words, order, i, hi)
                hi = j

    @staticmethod
    def _emit_ops(ops: list[int], consts: tuple) -> None:
        """Render an op list to its reference stream, vectorised.

        Ops are 4-int records: ``(0, mid, -, -)`` partition header (store
        lo, store hi, load ptr[mid]); ``(1, pos, val, piv)`` scan step
        (load ptr[pos], then one (blob[val], blob[piv]) load pair per byte
        up to and including the first difference); ``(2, i, j, -)`` swap
        (load ptr[i], load ptr[j], store ptr[i], store ptr[j]).
        """
        if not ops:
            return
        m, ptr_base, lo_slot, hi_slot, w_mat, wlen, blob_base = consts
        arr = np.array(ops, dtype=np.int64).reshape(-1, 4)
        del ops[:]
        typ, a, b, c = arr.T
        n_ops = arr.shape[0]
        is_s = typ == 1
        counts = np.empty(n_ops, dtype=np.int64)
        counts[typ == 0] = 3
        counts[typ == 2] = 4
        # First-difference positions for every compared pair, in one shot.
        neq = w_mat[b[is_s]] != w_mat[c[is_s]]
        d = np.where(neq.any(axis=1), neq.argmax(axis=1), wlen[b[is_s]])
        counts[is_s] = 3 + 2 * d  # ptr load + (d+1) pairs
        total = int(counts.sum())
        ends = np.cumsum(counts)
        op_of = np.repeat(np.arange(n_ops), counts)
        e = np.arange(total, dtype=np.int64) - (ends - counts)[op_of]
        t_rep = typ[op_of]
        addr = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=bool)
        # Partition headers.
        mh = t_rep == 0
        addr[mh & (e == 0)] = lo_slot
        addr[mh & (e == 1)] = hi_slot
        m2 = mh & (e == 2)
        addr[m2] = ptr_base + 8 * a[op_of[m2]]
        wr[mh & (e < 2)] = True
        # Scan steps: the ptr load, then alternating (blob a, blob b) pairs.
        ms = t_rep == 1
        m0 = ms & (e == 0)
        addr[m0] = ptr_base + 8 * a[op_of[m0]]
        me = ms & (e > 0)
        ke = e[me] - 1
        ome = op_of[me]
        addr[me] = (
            np.where((ke & 1) == 0, blob_base[b[ome]], blob_base[c[ome]])
            + (ke >> 1)
        )
        # Swaps: two loads then two stores, i before j.
        mw = t_rep == 2
        ow = op_of[mw]
        addr[mw] = ptr_base + 8 * np.where((e[mw] & 1) == 0, a[ow], b[ow])
        wr[mw & (e >= 2)] = True
        m.pattern_stream(addr.astype(np.uint64), wr)

    # -- scalar (reference) path ---------------------------------------------------

    def _strcmp(self, m: Recorder, blobs: list[Array], words: list[str], a: int, b: int) -> int:
        wa, wb = words[a], words[b]
        for k in range(max(len(wa), len(wb)) + 1):
            m.load(blobs[a].addr(min(k, _WORD_BYTES - 1)))
            m.load(blobs[b].addr(min(k, _WORD_BYTES - 1)))
            ca = wa[k] if k < len(wa) else ""
            cb = wb[k] if k < len(wb) else ""
            if ca != cb:
                return -1 if ca < cb else 1
        return 0

    def _sort(
        self,
        m: Recorder,
        ptr_arr: Array,
        blobs: list[Array],
        words: list[str],
        order: list[int],
        lo: int,
        hi: int,
    ) -> None:
        while lo < hi:
            frame = m.space.push_frame(64)
            lo_slot = frame.local("lo")
            hi_slot = frame.local("hi")
            m.store(lo_slot)
            m.store(hi_slot)
            mid = (lo + hi) // 2
            m.load_elem(ptr_arr, mid)
            pivot = order[mid]
            i, j = lo, hi
            while i <= j:
                while True:
                    m.load_elem(ptr_arr, i)
                    if self._strcmp(m, blobs, words, order[i], pivot) >= 0:
                        break
                    i += 1
                while True:
                    m.load_elem(ptr_arr, j)
                    if self._strcmp(m, blobs, words, order[j], pivot) <= 0:
                        break
                    j -= 1
                if i <= j:
                    m.load_elem(ptr_arr, i)
                    m.load_elem(ptr_arr, j)
                    m.store_elem(ptr_arr, i)
                    m.store_elem(ptr_arr, j)
                    order[i], order[j] = order[j], order[i]
                    i += 1
                    j -= 1
            m.space.pop_frame()
            # Recurse into the smaller side; iterate on the larger.
            if j - lo < hi - i:
                if lo < j:
                    self._sort(m, ptr_arr, blobs, words, order, lo, j)
                lo = i
            else:
                if i < hi:
                    self._sort(m, ptr_arr, blobs, words, order, i, hi)
                hi = j
