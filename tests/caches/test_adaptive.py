"""Adaptive group-associative cache tests (paper Section III.B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import AdaptiveGroupAssociativeCache, DirectMappedCache
from repro.core.simulator import simulate
from repro.trace import ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestConstruction:
    def test_paper_table_sizes(self):
        c = AdaptiveGroupAssociativeCache(G)
        assert c.sht_capacity == int(1024 * 3 / 8) == 384
        assert c.out_capacity == int(1024 / 4) == 256

    def test_rejects_multiway(self):
        with pytest.raises(ValueError):
            AdaptiveGroupAssociativeCache(CacheGeometry(1024, 32, 2))

    def test_custom_fractions(self):
        c = AdaptiveGroupAssociativeCache(G, sht_fraction=0.5, out_fraction=0.125)
        assert c.sht_capacity == 512
        assert c.out_capacity == 128


class TestBehaviour:
    def test_fixes_ping_pong(self, ping_pong):
        dm = simulate(DirectMappedCache(G), ping_pong)
        ad = simulate(AdaptiveGroupAssociativeCache(G), ping_pong)
        assert dm.miss_rate == 1.0
        assert ad.miss_rate < 0.05

    def test_out_hits_cost_three_cycles(self):
        c = AdaptiveGroupAssociativeCache(G)
        a, b = 0, 32 * 1024
        # Make set 0 hot (enters the SHT) so its victim is protected.
        for _ in range(3):
            c.access(a)
        c.access(b)  # miss: a is protected, relocated via OUT
        r = c.access(a)  # found through the OUT directory
        assert r.hit and r.cycles == c.OUT_HIT_CYCLES and r.hit_class == "out"

    def test_out_hit_swaps_back_to_primary(self):
        c = AdaptiveGroupAssociativeCache(G)
        a, b = 0, 32 * 1024
        for _ in range(3):
            c.access(a)
        c.access(b)
        c.access(a)  # OUT hit, swap into primary
        r = c.access(a)
        assert r.hit and r.cycles == 1

    def test_disposable_line_simply_replaced(self):
        """A line whose set never re-enters the SHT is disposable: its
        eviction must not populate the OUT directory."""
        c = AdaptiveGroupAssociativeCache(G)
        c.access(0)  # cold fill: line disposable until SHT-hot
        # A single access *does* touch the SHT; age set 0 out of it by
        # touching sht_capacity other sets.
        for s in range(1, c.sht_capacity + 2):
            c.access(s * 32)
        before = len(c._out)
        c.access(32 * 1024)  # conflicts with block 0 at set 0
        assert len(c._out) == before  # no relocation recorded

    def test_fraction_direct_hits(self, zipf):
        c = AdaptiveGroupAssociativeCache(G)
        simulate(c, zipf)
        assert 0.0 <= c.fraction_direct_hits <= 1.0

    def test_never_much_worse_than_direct_mapped(self):
        for seed in range(4):
            t = zipf_trace(15_000, seed=seed)
            dm = simulate(DirectMappedCache(G), t)
            ad = simulate(AdaptiveGroupAssociativeCache(G), t)
            assert ad.misses <= dm.misses * 1.10, f"seed {seed}"

    def test_invariants_under_stress(self):
        rng = np.random.default_rng(7)
        c = AdaptiveGroupAssociativeCache(G)
        addrs = (rng.integers(0, 64, size=5000) * 32 * 1024
                 + rng.integers(0, 16, size=5000) * 32)
        for a in addrs:
            c.access(int(a))
        c.check_invariants()

    def test_flush(self):
        c = AdaptiveGroupAssociativeCache(G)
        for a in range(0, 4096, 32):
            c.access(a)
        c.flush()
        assert c.contents() == set()
        assert len(c._out) == 0 and len(c._sht) == 0


class TestTables:
    def test_sht_tracks_mru_sets(self):
        c = AdaptiveGroupAssociativeCache(G)
        for s in (1, 2, 3):
            c.access(s * 32)
        assert list(c._sht) == [1, 2, 3]
        c.access(32)  # set 1 becomes MRU
        assert list(c._sht) == [2, 3, 1]

    def test_sht_capacity_respected(self):
        c = AdaptiveGroupAssociativeCache(G, sht_fraction=4 / 1024)
        for s in range(10):
            c.access(s * 32)
        assert len(c._sht) == 4

    def test_out_capacity_respected(self):
        c = AdaptiveGroupAssociativeCache(G, out_fraction=2 / 1024)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 1 << 22, size=3000, dtype=np.uint64):
            c.access(int(a))
        assert len(c._out) <= 2
