"""Aux fast-path canaries: miss-event replay vs the sequential wrapper.

Regression gates for the aux-subsystem PR (CI replays this file against
the committed ``BENCH_*.json`` baseline):

* the replay: :func:`~repro.core.aux.simulate_aux` under ``engine="auto"``
  — one vectorised direct-mapped pass plus a pure-Python replay of only
  the miss events through the real structure objects — must stay well
  ahead of the sequential reference (driving the composed
  :class:`~repro.core.aux.AugmentedCache` one access at a time) on a
  million-access trace.  Gated for the 4-entry victim cache, the PR's
  contractual configuration, with the floor asserted *inside* the bench
  so the claim travels with the number;
* the sweep: :func:`~repro.core.aux.simulate_aux_sweep` over the ext-aux
  composition ladder must beat per-spec sequential simulation (it shares
  the decode and the miss/prev pass across every spec).

Bit-identity of everything measured here is locked by
``tests/core/test_aux_differential.py``.
"""

from __future__ import annotations

import time

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.aux import simulate_aux, simulate_aux_sweep
from repro.core.indexing import ModuloIndexing
from repro.trace import zipf_trace

G = PAPER_L1_GEOMETRY
TRACE_1M = zipf_trace(1_000_000, seed=23)

#: The ext-aux composition ladder (sans depth variants — one per combo).
AUX_LADDER = [("vc", 4), ("mc", 4), ("sb", 4), ("vc+sb", 4), ("mc+sb", 4)]


def test_victim_replay_1m(benchmark):
    """4-entry VC replay over a million accesses (≥ 5× vs sequential).

    The fast path answers the composed run from one vectorised
    direct-mapped pass + replaying only the miss events through the real
    ``VictimBuffer``; the reference drives the wrapper access by access.
    Measured locally around 25×; the floor is the PR's contractual
    minimum.
    """
    scheme = ModuloIndexing(G)
    result = benchmark.pedantic(
        lambda: simulate_aux(scheme, TRACE_1M, G, combo="vc", depth=4),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.accesses == len(TRACE_1M)

    t0 = time.perf_counter()
    seq = simulate_aux(
        scheme, TRACE_1M, G, combo="vc", depth=4, engine="sequential"
    )
    sequential_seconds = time.perf_counter() - t0
    assert seq.misses == result.misses
    speedup = sequential_seconds / benchmark.stats.stats.min
    assert speedup >= 5.0, (
        f"victim replay only {speedup:.1f}x over the sequential wrapper"
    )


def test_aux_sweep_ladder_1m(benchmark):
    """Five-combo aux sweep over a million accesses (≥ 5× vs sequential).

    ``simulate_aux_sweep`` decodes the trace and computes the shared
    miss/displacement events once, then replays each composition; the
    reference simulates each spec through the sequential wrapper.
    """
    scheme = ModuloIndexing(G)
    results = benchmark.pedantic(
        lambda: simulate_aux_sweep(scheme, TRACE_1M, G, AUX_LADDER),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(results) == len(AUX_LADDER)

    t0 = time.perf_counter()
    seq = simulate_aux_sweep(
        scheme, TRACE_1M, G, AUX_LADDER, engine="sequential"
    )
    sequential_seconds = time.perf_counter() - t0
    assert [r.misses for r in seq] == [r.misses for r in results]
    speedup = sequential_seconds / benchmark.stats.stats.min
    assert speedup >= 5.0, (
        f"aux sweep only {speedup:.1f}x over per-spec sequential"
    )
