"""Uniformity metric tests, cross-checked against scipy.stats."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uniformity import (
    aux_structure_report,
    distribution_moments,
    eviction_absorption,
    eviction_absorption_gini,
    gini_coefficient,
    half_double_buckets,
    kurtosis,
    normalized_entropy,
    percent_increase,
    percent_reduction,
    skewness,
    uniformity_report,
    zhang_classification,
)

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=2, max_size=200
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestMoments:
    @settings(max_examples=100)
    @given(counts_strategy)
    def test_matches_scipy(self, counts):
        if np.ptp(counts) == 0:
            return  # degenerate handled separately
        _, _, skew, kurt = distribution_moments(counts)
        assert skew == pytest.approx(scipy.stats.skew(counts), abs=1e-9)
        assert kurt == pytest.approx(scipy.stats.kurtosis(counts), abs=1e-9)

    def test_degenerate_distribution(self):
        mean, std, skew, kurt = distribution_moments(np.full(10, 7.0))
        assert (mean, std, skew, kurt) == (7.0, 0.0, 0.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            distribution_moments(np.array([]))

    def test_flat_distribution_platykurtic(self):
        """A uniform (flat) distribution has negative excess kurtosis —
        the 'extreme case' the paper references."""
        flat = np.arange(1000, dtype=np.float64)
        assert kurtosis(flat) == pytest.approx(-1.2, abs=0.01)

    def test_spike_is_leptokurtic(self):
        spike = np.zeros(1000)
        spike[3] = 1e6
        assert kurtosis(spike) > 100
        assert skewness(spike) > 10

    def test_symmetric_has_zero_skew(self):
        # Deviations from the mean are exactly mirrored.
        sym = np.array([0, 1, 1, 2, 5, 6, 6, 7], dtype=float)
        assert skewness(sym) == pytest.approx(0.0, abs=1e-12)


class TestPercentChange:
    def test_reduction_positive_for_improvement(self):
        assert percent_reduction(50, 100) == 50.0
        assert percent_reduction(150, 100) == -50.0

    def test_reduction_zero_baseline(self):
        assert percent_reduction(0.0, 0.0) == 0.0
        assert percent_reduction(5.0, 0.0) == -1e9  # the paper's -5e8-style bar

    def test_increase_signs(self):
        assert percent_increase(150, 100) == 50.0
        assert percent_increase(50, 100) == -50.0

    def test_increase_negative_baseline(self):
        # Moments can be negative; change is relative to |baseline|.
        assert percent_increase(-1.0, -2.0) == 50.0

    def test_increase_zero_baseline(self):
        assert percent_increase(0.0, 0.0) == 0.0
        assert percent_increase(3.0, 0.0) == 1e9


class TestZhangClassification:
    def test_uniform_sets_have_no_extremes(self):
        n = 100
        flat = np.full(n, 10.0)
        z = zhang_classification(flat, flat, flat)
        assert z["FHS%"] == 0.0 or z["FHS%"] == 100.0  # all equal: >= 2x mean impossible
        assert z["LAS%"] == 0.0

    def test_hot_cold_split(self):
        accesses = np.array([100.0] * 10 + [1.0] * 90)
        hits = accesses * 0.9
        misses = accesses * 0.1
        z = zhang_classification(accesses, hits, misses)
        assert z["FHS%"] == pytest.approx(10.0)
        assert z["FMS%"] == pytest.approx(10.0)
        assert z["LAS%"] == pytest.approx(90.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            zhang_classification(np.array([]), np.array([]), np.array([]))


class TestBuckets:
    def test_figure1_style_distribution(self):
        # 90% of sets nearly idle, 10% hot: the paper's FFT shape.
        counts = np.array([1.0] * 900 + [500.0] * 100)
        below, above = half_double_buckets(counts)
        assert below == pytest.approx(90.0)
        assert above == pytest.approx(10.0)

    def test_all_zero(self):
        below, above = half_double_buckets(np.zeros(10))
        assert (below, above) == (100.0, 0.0)


class TestGiniEntropy:
    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        x = np.zeros(1000)
        x[0] = 1000
        assert gini_coefficient(x) > 0.99

    @settings(max_examples=50)
    @given(counts_strategy)
    def test_gini_bounds(self, counts):
        g = gini_coefficient(counts)
        assert -1e-9 <= g <= 1.0

    def test_entropy_uniform_is_one(self):
        assert normalized_entropy(np.full(64, 3.0)) == pytest.approx(1.0)

    def test_entropy_concentrated_near_zero(self):
        x = np.zeros(64)
        x[5] = 100
        assert normalized_entropy(x) == pytest.approx(0.0, abs=1e-9)


class TestReport:
    def test_report_fields(self):
        counts = np.array([1.0] * 900 + [500.0] * 100)
        rep = uniformity_report(counts)
        d = rep.as_dict()
        assert d["below_half_pct"] == pytest.approx(90.0)
        assert d["gini"] > 0.5
        assert set(d) == {
            "mean",
            "std",
            "skewness",
            "kurtosis",
            "gini",
            "entropy",
            "below_half_pct",
            "above_double_pct",
        }


class TestAuxMetrics:
    class FakeResult:
        def __init__(self, accesses, misses, extra):
            self.accesses = accesses
            self.misses = misses
            self.extra = extra

    def test_report_from_counters(self):
        res = self.FakeResult(
            accesses=1000,
            misses=100,
            extra={
                "direct_hits": 800,
                "victim_hits": 60,
                "stream_hits": 40,
                "stream_prefetches": 200,
            },
        )
        rep = aux_structure_report(res)
        assert rep.victim_hit_rate == pytest.approx(0.06)
        assert rep.miss_cache_hit_rate == 0.0
        assert rep.stream_hit_rate == pytest.approx(0.04)
        # coverage: 40 of the 140 would-be composed misses were streamed in.
        assert rep.stream_coverage == pytest.approx(40 / 140)
        assert rep.stream_accuracy == pytest.approx(40 / 200)
        # main-array misses = 100 + 60 + 40; the aux layer absorbed 100.
        assert rep.absorption_rate == pytest.approx(0.5)
        assert set(rep.as_dict()) == {
            "victim_hit_rate",
            "miss_cache_hit_rate",
            "stream_hit_rate",
            "stream_coverage",
            "stream_accuracy",
            "absorption_rate",
        }

    def test_report_zero_guards(self):
        rep = aux_structure_report(self.FakeResult(0, 0, {}))
        assert all(v == 0.0 for v in rep.as_dict().values())

    def test_report_from_real_simulation(self):
        from repro.core.address import CacheGeometry
        from repro.core.aux import simulate_aux
        from repro.core.indexing import ModuloIndexing
        from repro.trace import ping_pong_trace

        g = CacheGeometry(2048, 16, ways=1, address_bits=16)
        res = simulate_aux(
            ModuloIndexing(g), ping_pong_trace(4_000), g, combo="vc", depth=4
        )
        rep = aux_structure_report(res)
        # Ping-pong between two conflicting lines: the VC absorbs nearly
        # every conflict miss.
        assert rep.victim_hit_rate > 0.9
        assert rep.absorption_rate > 0.99
        assert rep.stream_hit_rate == rep.stream_coverage == rep.stream_accuracy == 0.0

    def test_absorption_per_set_and_floor(self):
        base = np.array([10, 5, 0, 3])
        aug = np.array([2, 5, 1, 0])
        # Set 2: the aux layer shifted a cold miss there; floored at zero.
        assert eviction_absorption(base, aug).tolist() == [8, 0, 0, 3]
        with pytest.raises(ValueError, match="equal shape"):
            eviction_absorption(base, aug[:2])

    def test_absorption_gini_extremes(self):
        base = np.array([100, 100, 100, 100])
        hot = np.array([0, 100, 100, 100])  # all relief on one set
        even = np.array([50, 50, 50, 50])  # relief spread evenly
        assert eviction_absorption_gini(base, hot) > 0.7
        assert eviction_absorption_gini(base, even) == pytest.approx(0.0)
        assert eviction_absorption_gini(base, base) == 0.0
