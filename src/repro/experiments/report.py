"""Experiment results and rendering.

An :class:`ExperimentResult` is a labelled grid — rows are benchmarks (or
thread mixes), columns are techniques — matching the bar groups of the
paper's figures, plus free-form notes and raw arrays.  Rendering produces
the monospace tables written to EXPERIMENTS.md and printed by the CLI,
including a unicode bar strip so the "shape" of each figure is visible in
text.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "ExperimentResult",
    "render_table",
    "render_bars",
    "sparkline",
    "save_result",
    "load_result",
]


@dataclass
class ExperimentResult:
    """A reproduced figure: row × column grid of values."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    unit: str = "%"
    notes: list[str] = field(default_factory=list)
    #: Raw per-set arrays or other bulk data keyed by name.
    arrays: dict[str, Any] = field(default_factory=dict)
    #: Execution counters from the parallel engine (cache hits/misses,
    #: per-cell wall times, jobs).  Empty for figures not yet on the engine.
    engine_stats: dict[str, Any] = field(default_factory=dict)

    def add_row(self, label: str, values: dict[str, float]) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"values for undeclared columns: {sorted(unknown)}")
        self.rows[label] = dict(values)

    def add_average_row(self, label: str = "Average") -> None:
        """Column-wise mean over the existing rows (the paper's last group)."""
        if not self.rows:
            raise ValueError("no rows to average")
        avg = {}
        for col in self.columns:
            vals = [r[col] for r in self.rows.values() if col in r]
            if vals:
                avg[col] = float(np.mean(vals))
        self.rows[label] = avg

    def column(self, name: str, include_average: bool = False) -> dict[str, float]:
        return {
            label: row[name]
            for label, row in self.rows.items()
            if name in row and (include_average or label != "Average")
        }

    def value(self, row: str, col: str) -> float:
        return self.rows[row][col]

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_markdown(self) -> str:
        head = f"### {self.experiment_id}: {self.title}\n\n"
        return head + render_table(self, markdown=True) + (
            "\n" + "\n".join(f"- {n}" for n in self.notes) + "\n" if self.notes else ""
        )

    def engine_summary(self) -> str:
        """One-line execution summary (empty string when no engine stats)."""
        s = self.engine_stats
        if not s:
            return ""
        batched = (
            f", {s.get('cells_batched', 0)} batched into "
            f"{s.get('families_batched', 0)} families"
            if s.get("families_batched")
            else ""
        )
        return (
            f"engine: {s.get('cells_total', 0)} cells, "
            f"{s.get('cache_hits', 0)} cached, "
            f"{s.get('cache_misses', 0)} simulated{batched}, "
            f"jobs={s.get('jobs', 1)}, {s.get('wall_seconds', 0.0):.2f}s"
        )

    def __str__(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", render_table(self)]
        lines.extend(f"  note: {n}" for n in self.notes)
        if self.engine_stats:
            lines.append(f"  {self.engine_summary()}")
        return "\n".join(lines)


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    """Persist a result as JSON (+ a sibling ``.npz`` for array payloads).

    Scalars in ``arrays`` ride along in the JSON; NumPy arrays go to the
    ``.npz``.  Non-serialisable payloads (e.g. dataclasses) are dropped with
    their keys recorded under ``"skipped_arrays"``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scalars: dict[str, Any] = {}
    arrays: dict[str, np.ndarray] = {}
    skipped: list[str] = []
    for key, value in result.arrays.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (int, float, str, bool)):
            scalars[key] = value
        else:
            skipped.append(key)
    doc = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "unit": result.unit,
        "notes": result.notes,
        "scalar_arrays": scalars,
        "skipped_arrays": skipped,
        "has_npz": bool(arrays),
        "engine_stats": result.engine_stats,
    }
    path.write_text(json.dumps(doc, indent=2))
    if arrays:
        np.savez_compressed(path.with_suffix(".npz"), **arrays)
    return path


def load_result(path: str | Path) -> ExperimentResult:
    """Inverse of :func:`save_result`."""
    path = Path(path)
    doc = json.loads(path.read_text())
    result = ExperimentResult(
        experiment_id=doc["experiment_id"],
        title=doc["title"],
        columns=list(doc["columns"]),
        unit=doc.get("unit", "%"),
        notes=list(doc.get("notes", [])),
        engine_stats=dict(doc.get("engine_stats", {})),
    )
    result.rows = {label: dict(row) for label, row in doc["rows"].items()}
    result.arrays.update(doc.get("scalar_arrays", {}))
    npz_path = path.with_suffix(".npz")
    if doc.get("has_npz") and npz_path.exists():
        with np.load(npz_path) as data:
            for key in data.files:
                result.arrays[key] = data[key]
    return result


def _fmt(v: float) -> str:
    if v != v:  # NaN
        return "-"
    if abs(v) >= 1e6:
        return f"{v:.2e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.2f}"


def render_table(result: ExperimentResult, markdown: bool = False) -> str:
    cols = result.columns
    label_w = max([len(r) for r in result.rows] + [9])
    col_w = {c: max(len(c), 10) for c in cols}
    if markdown:
        header = "| " + "benchmark".ljust(label_w) + " | " + " | ".join(
            c.ljust(col_w[c]) for c in cols
        ) + " |"
        sep = "|" + "-" * (label_w + 2) + "|" + "|".join("-" * (col_w[c] + 2) for c in cols) + "|"
        lines = [header, sep]
        for label, row in result.rows.items():
            cells = [(_fmt(row[c]) if c in row else "-").ljust(col_w[c]) for c in cols]
            lines.append("| " + label.ljust(label_w) + " | " + " | ".join(cells) + " |")
        return "\n".join(lines)
    header = "benchmark".ljust(label_w) + "  " + "  ".join(c.rjust(col_w[c]) for c in cols)
    lines = [header, "-" * len(header)]
    for label, row in result.rows.items():
        cells = [(_fmt(row[c]) if c in row else "-").rjust(col_w[c]) for c in cols]
        lines.append(label.ljust(label_w) + "  " + "  ".join(cells))
    return "\n".join(lines)


_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Downsample a long array to a unicode mini-histogram (Figure 1)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # Max-pool so hot sets stay visible after downsampling.
        pad = (-values.size) % width
        padded = np.pad(values, (0, pad), constant_values=0)
        values = padded.reshape(width, -1).max(axis=1)
    top = values.max()
    if top <= 0:
        return _BLOCKS[0] * values.size
    idx = np.minimum((values / top * (len(_BLOCKS) - 1)).astype(int), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def render_bars(result: ExperimentResult, column: str, width: int = 40) -> str:
    """Horizontal signed bar chart of one column (one paper bar group)."""
    rows = result.column(column, include_average=True)
    if not rows:
        return "(no data)"
    label_w = max(len(r) for r in rows)
    peak = max(abs(v) for v in rows.values()) or 1.0
    lines = [f"[{result.experiment_id}] {column} ({result.unit})"]
    for label, v in rows.items():
        n = int(round(abs(v) / peak * width))
        bar = ("-" if v < 0 else "+") * n
        lines.append(f"{label.ljust(label_w)} {_fmt(v):>10} {bar}")
    return "\n".join(lines)
