"""Shared benchmark fixtures.

Benches regenerate the paper's figures at a reduced-but-representative trace
length so a full ``pytest benchmarks/ --benchmark-only`` run completes in a
few minutes.  Traces are cached on disk under ``.trace_cache`` so the
generation cost is paid once; the measured time is the simulation/analysis.

Set ``REPRO_BENCH_REFS`` to change the trace length (e.g. 120000 for the
paper-default length used in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import PaperConfig

BENCH_REFS = int(os.environ.get("REPRO_BENCH_REFS", "60000"))


@pytest.fixture(scope="session")
def config() -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=BENCH_REFS,
        trace_cache_dir=Path(__file__).resolve().parent.parent / ".trace_cache",
    )


def run_once(benchmark, fn):
    """Run a whole-figure regeneration exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
