# Convenience targets for the reproduction workflow.

PY ?= python
REFS ?= 120000
# Worker processes for the parallel experiment engine: 0 = all cores,
# 1 = deterministic sequential fallback.  Output is bit-identical either way.
JOBS ?= 0

.PHONY: install test test-fast bench bench-check serve-smoke cluster-smoke warm-traces replay examples clean-traces clean-results all

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# Fast inner-loop run: unit/integration tests only (skips benchmarks/),
# fail-fast and quiet.
test-fast:
	$(PY) -m pytest tests/ -x -q

# Full benchmark suite, with the run archived as BENCH_<sha>.json so the
# engine canaries (benchmarks/test_engine_micro.py) can be regression-gated.
bench:
	$(PY) -m pytest benchmarks/ --benchmark-only \
	  --benchmark-json=BENCH_$$(git rev-parse --short HEAD).json

# Replay the regression canaries (engine micro-benchmarks + trace
# generation + trace store + sweep batching + serving + cluster scaling)
# and gate them against the committed BENCH_*.json baseline (>25%
# slowdown on any canary fails).  The trace-gen, trace-store,
# sweep-batching, policy-kernel, aux and cluster files also enforce
# machine-independent speedup floors in-test (trace store: mmap >=5x over
# npz decode at 1M refs; aux: miss-event replay >=5x over the sequential
# wrapper at 1M refs; cluster: >=1.7x at 2 workers, >=3.0x at 4).
bench-check:
	$(PY) -m pytest benchmarks/test_engine_micro.py benchmarks/test_trace_gen.py \
	  benchmarks/test_trace_store_bench.py \
	  benchmarks/test_service_bench.py benchmarks/test_sweep_batching_bench.py \
	  benchmarks/test_policy_kernel_bench.py \
	  benchmarks/test_aux_bench.py \
	  benchmarks/test_cluster_bench.py \
	  --benchmark-only --benchmark-json=bench-candidate.json
	$(PY) benchmarks/check_regression.py bench-candidate.json

# Boot a real `repro-cache serve` daemon as a subprocess and exercise the
# serving contract end to end: warm-cache resubmission, single-flight
# coalescing, overloaded backpressure, stats, clean shutdown.
serve-smoke:
	PYTHONPATH=src $(PY) scripts/serve_smoke.py

# Boot a real two-worker cluster (two `serve` daemons sharing one shared
# result store behind a `route` daemon) and exercise the clustering
# contract: ring-split sweeps, bit-identical routed results, SIGKILL
# failover mid-burst, exactly-once via the shared store, clean shutdown.
cluster-smoke:
	PYTHONPATH=src $(PY) scripts/cluster_smoke.py

# Prefetch every trace the experiment suite needs, in parallel, before a
# replay — turns the cold-start cost into one concurrent generation pass.
warm-traces:
	PYTHONPATH=src $(PY) -m repro.cli trace warm --refs $(REFS) --jobs $(JOBS)

replay:
	$(PY) examples/replay_paper.py --refs $(REFS) --jobs $(JOBS) --out results_full.md

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/application_tuning.py 30000
	$(PY) examples/smt_cache_design.py
	$(PY) examples/custom_workload.py
	$(PY) examples/instruction_placement.py

# Removes traces AND the per-cell result cache nested under it.
clean-traces:
	rm -rf .trace_cache

# Drop only the memoized per-cell simulation results (keep traces).
clean-results:
	rm -rf .trace_cache/results

all: test bench replay
