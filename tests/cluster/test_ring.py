"""Hypothesis properties of the consistent-hash ring.

The three properties the router's correctness argument leans on:

* **balance** — no node owns a pathological share of the keyspace;
* **minimal movement** — adding/removing a node only reassigns keys that
  move to/from that node (this is what makes ejection/rejoin cheap and
  what bounds the cold work a membership change can cause);
* **determinism** — placement is a pure function of SHA-256, so separate
  processes (router replicas, test harnesses) agree without coordination.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing

#: Deterministic pseudo-keys shaped like real result-cache keys (hex).
def _keys(n: int, salt: str = "") -> list[str]:
    return [
        hashlib.sha256(f"{salt}key-{i}".encode()).hexdigest() for i in range(n)
    ]


def _node_names(min_size: int = 1) -> st.SearchStrategy[list[str]]:
    return st.lists(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789.:-",
            min_size=1,
            max_size=24,
        ),
        min_size=min_size,
        max_size=8,
        unique=True,
    )


class TestBalance:
    @given(n_nodes=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_max_share_within_bound_of_mean(self, n_nodes: int):
        nodes = [f"10.0.0.{i}:7500" for i in range(n_nodes)]
        ring = HashRing(nodes)
        shares = ring.shares(_keys(4000))
        mean = 4000 / n_nodes
        assert sum(shares.values()) == 4000
        # 128 vnodes keeps every shard within 1.7x of the fair share (the
        # theoretical spread shrinks like 1/sqrt(vnodes)).
        assert max(shares.values()) <= 1.7 * mean
        assert min(shares.values()) >= mean / 1.7

    def test_single_node_owns_everything(self):
        ring = HashRing(["only:1"])
        assert ring.shares(_keys(100)) == {"only:1": 100}


class TestMinimalMovement:
    @given(nodes=_node_names(min_size=1), joiner=st.text(min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_join_moves_keys_only_onto_the_new_node(self, nodes, joiner):
        if joiner in nodes:
            nodes = [n for n in nodes if n != joiner]
            if not nodes:
                nodes = ["survivor"]
        before = HashRing(nodes)
        after = HashRing(nodes + [joiner])
        for key in _keys(300):
            old, new = before.owner(key), after.owner(key)
            if old != new:
                # A moved key may only have moved TO the joiner.
                assert new == joiner

    @given(nodes=_node_names(min_size=2), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_leave_moves_only_the_leavers_keys(self, nodes, data):
        leaver = data.draw(st.sampled_from(nodes))
        before = HashRing(nodes)
        after = HashRing([n for n in nodes if n != leaver])
        for key in _keys(300):
            old, new = before.owner(key), after.owner(key)
            if old != new:
                # A moved key may only have moved FROM the leaver.
                assert old == leaver

    @given(nodes=_node_names(min_size=2), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_ejection_equals_membership_removal(self, nodes, data):
        """Alive-set filtering is exactly a ring without the dead node.

        This is the property that makes rejoin free: un-ejecting restores
        the original placement bit-for-bit, because ejection never
        rebuilt anything.
        """
        dead = data.draw(st.sampled_from(nodes))
        alive = [n for n in nodes if n != dead]
        full = HashRing(nodes)
        removed = HashRing(alive)
        for key in _keys(150):
            assert full.owner(key, alive=alive) == removed.owner(key)


class TestPreference:
    @given(nodes=_node_names(min_size=1))
    @settings(max_examples=25, deadline=None)
    def test_preference_is_a_permutation_starting_at_the_owner(self, nodes):
        ring = HashRing(nodes)
        for key in _keys(50):
            pref = ring.preference(key)
            assert pref[0] == ring.owner(key)
            assert sorted(pref) == sorted(nodes)

    @given(nodes=_node_names(min_size=2), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_alive_owner_is_first_alive_preference(self, nodes, data):
        alive = data.draw(
            st.lists(st.sampled_from(nodes), min_size=1, unique=True)
        )
        ring = HashRing(nodes)
        for key in _keys(50):
            expected = next(n for n in ring.preference(key) if n in alive)
            assert ring.owner(key, alive=alive) == expected

    def test_empty_alive_set_raises(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(LookupError):
            ring.owner("k", alive=[])
        with pytest.raises(LookupError):
            ring.owner("k", alive=["not-a-member"])


class TestDeterminism:
    def test_placement_identical_across_processes(self):
        """A fresh interpreter derives the identical key → node map.

        Guards against accidental dependence on ``hash()`` (which is
        process-seeded) or iteration order anywhere in the ring.
        """
        nodes = ["10.0.0.1:7500", "10.0.0.2:7500", "10.0.0.3:7500"]
        keys = _keys(64)
        local = {k: HashRing(nodes).owner(k) for k in keys}
        script = (
            "import json, sys\n"
            "from repro.cluster.ring import HashRing\n"
            "nodes, keys = json.load(sys.stdin)\n"
            "ring = HashRing(nodes)\n"
            "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([nodes, keys]),
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(proc.stdout) == local

    def test_rebuild_is_identical_in_process(self):
        nodes = ["a", "b", "c", "d"]
        r1, r2 = HashRing(nodes), HashRing(nodes)
        for key in _keys(200):
            assert r1.owner(key) == r2.owner(key)
            assert r1.preference(key) == r2.preference(key)

    def test_node_order_does_not_matter(self):
        keys = _keys(200)
        fwd = HashRing(["a", "b", "c"])
        rev = HashRing(["c", "b", "a"])
        for key in keys:
            assert fwd.owner(key) == rev.owner(key)
