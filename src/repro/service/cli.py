"""CLI verbs of the job server: ``repro serve`` and ``repro submit``.

``serve`` starts the asyncio daemon in the foreground (Ctrl-C or a client
``shutdown`` request stops it cleanly); ``submit`` is a thin client for
one-shot submissions from scripts and smoke tests::

    repro-cache serve --port 7411 --jobs 4 --max-pending 64
    repro-cache submit fig4 --refs 8000             # experiment by id
    repro-cache submit cell --workload fft --label XOR
    repro-cache submit sweep --workload fft --schemes baseline,XOR,4way
    repro-cache submit health | stats | shutdown
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
from typing import Any

__all__ = ["add_service_commands", "cmd_serve", "cmd_submit", "DEFAULT_PORT"]

DEFAULT_PORT = 7411


def add_service_commands(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve", help="start the simulation job server (JSON lines over TCP)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral, printed on start)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes in the persistent cell pool (0 = all cores)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission limit: distinct in-flight cell computations before "
        "requests are rejected with a structured 'overloaded' error",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may override)",
    )
    serve.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell simulation budget in seconds (defaults to --deadline)",
    )
    serve.add_argument(
        "--threads",
        action="store_true",
        help="use a thread pool instead of worker processes (debug/CI only)",
    )
    serve.add_argument("--refs", type=int, default=None, help="default trace length")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--scale", type=float, default=None)

    submit = sub.add_parser(
        "submit", help="submit work to a running job server and print the reply"
    )
    submit.add_argument(
        "target",
        help="experiment id (fig1..fig14), or one of: cell, sweep, health, "
        "stats, shutdown",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument("--kind", default="indexing", help="cell: engine cell kind")
    submit.add_argument("--workload", default=None, help="cell/sweep: workload name")
    submit.add_argument("--label", default=None, help="cell: scheme/model label")
    submit.add_argument(
        "--schemes",
        default="baseline,XOR,Odd_Multiplier,Prime_Modulo",
        help="sweep: comma-separated labels",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, help="per-request deadline (seconds)"
    )
    submit.add_argument(
        "--arrays", action="store_true", help="include per-set arrays in the reply"
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress streamed progress events"
    )
    submit.add_argument("--refs", type=int, default=None, help="config override")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--scale", type=float, default=None)


# -- serve -------------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    from ..experiments.config import PaperConfig
    from .server import ReproServer

    updates: dict[str, Any] = {"jobs": args.jobs}
    if args.refs is not None:
        updates["ref_limit"] = args.refs
    if args.seed is not None:
        updates["seed"] = args.seed
    if args.scale is not None:
        updates["workload_scale"] = args.scale
    if args.cell_timeout is not None:
        updates["cell_timeout"] = args.cell_timeout
    from dataclasses import replace

    config = replace(PaperConfig(), **updates)
    from ..experiments.engine.parallel import effective_jobs

    server = ReproServer(
        config,
        host=args.host,
        port=args.port,
        workers=effective_jobs(args.jobs),
        max_pending=args.max_pending,
        use_processes=not args.threads,
        default_deadline=args.deadline,
    )

    async def main() -> None:
        await server.start()
        print(
            f"repro.service listening on {server.host}:{server.port} "
            f"(workers={effective_jobs(args.jobs)}, "
            f"max_pending={args.max_pending})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()
        print("repro.service stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro.service interrupted; shut down", file=sys.stderr)
    return 0


# -- submit ------------------------------------------------------------------------


def _overrides_from(args: argparse.Namespace) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    if args.refs is not None:
        overrides["ref_limit"] = args.refs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.scale is not None:
        overrides["workload_scale"] = args.scale
    return overrides


def cmd_submit(args: argparse.Namespace) -> int:
    from ..experiments import available_experiments
    from .client import ServiceClient, ServiceError

    def on_event(frame: dict[str, Any]) -> None:
        if not args.quiet:
            cell = frame.get("cell", "?")
            print(
                f"  [{frame.get('done', '?')}/{frame.get('total', '?')}] {cell}",
                file=sys.stderr,
                flush=True,
            )

    target = args.target
    # Usage errors are decidable without a server; report them before dialing.
    known = ("cell", "sweep", "health", "stats", "shutdown")
    if target not in known and target not in available_experiments():
        print(
            f"error: unknown submit target {target!r}; expected an "
            f"experiment id, cell, sweep, health, stats or shutdown",
            file=sys.stderr,
        )
        return 2
    if target == "cell" and (not args.workload or not args.label):
        print("error: submit cell requires --workload and --label", file=sys.stderr)
        return 2
    if target == "sweep" and not args.workload:
        print("error: submit sweep requires --workload", file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.host, args.port) as client:
            if target == "health":
                reply: dict[str, Any] = client.health()
            elif target == "stats":
                reply = client.stats()
            elif target == "shutdown":
                reply = {"shutting_down": client.shutdown()}
            elif target == "cell":
                reply = client.submit_cell(
                    args.kind,
                    args.workload,
                    args.label,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    arrays=args.arrays,
                )
            elif target == "sweep":
                schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
                reply = client.sweep(
                    args.workload,
                    schemes,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    arrays=args.arrays,
                    on_event=on_event,
                )
            else:
                reply = client.run_experiment(
                    target,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    on_event=on_event,
                )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach repro.service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 3
    with contextlib.suppress(BrokenPipeError):
        print(json.dumps(reply, indent=2, sort_keys=True))
    return 0
