"""MiBench ``qsort`` — quicksort of strings through a pointer array.

Faithful to the benchmark (qsort_small sorts words with ``strcmp``): the
array being partitioned holds *pointers*; every comparison dereferences two
pointers and walks the string bytes until they differ.  The reference mix
is therefore pointer-array sweeps + scattered string-blob reads + recursion
stack — and, as the paper observes for qsort, accesses spread widely so
programmable associativity gains little, while hashed indexes can *regress*
by colliding the hot pointer array with the string heap (the paper's
Figure 4 shows qsort hurt by every indexing scheme).

The sort is real (verified against ``sorted()`` in the tests).
"""

from __future__ import annotations

from ...trace.memory import Array
from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["QsortWorkload"]

_WORD_BYTES = 24  # MiBench small words are short; blobs padded like malloc


@register_workload
class QsortWorkload(Workload):
    name = "qsort"
    suite = "mibench"
    description = "Quicksort of random strings via a pointer array (strcmp)"
    access_pattern = "pointer-array partition scans + string-blob dereferences"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(3000, scale, minimum=16)
        ptr_arr = m.space.heap_array(8, n, "pointers")
        blobs = [m.space.heap_array(1, _WORD_BYTES, f"str{i}") for i in range(n)]
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        words = [
            "".join(alphabet[int(c)] for c in m.rng.integers(0, 26, size=int(m.rng.integers(3, 12))))
            for _ in range(n)
        ]
        order = list(range(n))  # order[i] = which word ptr slot i points to
        self._sort(m, ptr_arr, blobs, words, order, 0, n - 1)
        m.builder.meta["sorted_head"] = [words[order[i]] for i in range(min(n, 6))]

    def _strcmp(self, m: Recorder, blobs: list[Array], words: list[str], a: int, b: int) -> int:
        wa, wb = words[a], words[b]
        for k in range(max(len(wa), len(wb)) + 1):
            m.load(blobs[a].addr(min(k, _WORD_BYTES - 1)))
            m.load(blobs[b].addr(min(k, _WORD_BYTES - 1)))
            ca = wa[k] if k < len(wa) else ""
            cb = wb[k] if k < len(wb) else ""
            if ca != cb:
                return -1 if ca < cb else 1
        return 0

    def _sort(
        self,
        m: Recorder,
        ptr_arr: Array,
        blobs: list[Array],
        words: list[str],
        order: list[int],
        lo: int,
        hi: int,
    ) -> None:
        while lo < hi:
            frame = m.space.push_frame(64)
            lo_slot = frame.local("lo")
            hi_slot = frame.local("hi")
            m.store(lo_slot)
            m.store(hi_slot)
            mid = (lo + hi) // 2
            m.load_elem(ptr_arr, mid)
            pivot = order[mid]
            i, j = lo, hi
            while i <= j:
                while True:
                    m.load_elem(ptr_arr, i)
                    if self._strcmp(m, blobs, words, order[i], pivot) >= 0:
                        break
                    i += 1
                while True:
                    m.load_elem(ptr_arr, j)
                    if self._strcmp(m, blobs, words, order[j], pivot) <= 0:
                        break
                    j -= 1
                if i <= j:
                    m.load_elem(ptr_arr, i)
                    m.load_elem(ptr_arr, j)
                    m.store_elem(ptr_arr, i)
                    m.store_elem(ptr_arr, j)
                    order[i], order[j] = order[j], order[i]
                    i += 1
                    j -= 1
            m.space.pop_frame()
            # Recurse into the smaller side; iterate on the larger.
            if j - lo < hi - i:
                if lo < j:
                    self._sort(m, ptr_arr, blobs, words, order, lo, j)
                lo = i
            else:
                if i < hi:
                    self._sort(m, ptr_arr, blobs, words, order, i, hi)
                hi = j
