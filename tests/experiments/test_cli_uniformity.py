"""CLI uniformity-command tests."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestUniformityCommand:
    def test_basic_output(self, capsys):
        assert main(["uniformity", "--workload", "crc", "--refs", "5000"]) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out
        assert "accesses/set" in out
        assert "Zhang classes" in out

    def test_alternative_scheme(self, capsys):
        assert main(
            ["uniformity", "--workload", "crc", "--refs", "5000", "--scheme", "xor"]
        ) == 0
        assert "under xor" in capsys.readouterr().out

    def test_trainable_scheme_fitted_inline(self, capsys):
        assert main(
            ["uniformity", "--workload", "crc", "--refs", "5000", "--scheme", "givargis"]
        ) == 0
        assert "under givargis" in capsys.readouterr().out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["uniformity", "--workload", "nope", "--refs", "100"])
