"""End-to-end cluster router tests (real loopback TCP, in-process daemons).

The acceptance contract of ISSUE 7, locked executable:

* every cell kind routed through the cluster is **bit-identical** to the
  in-process engine's answer (differential over the full wire payload,
  arrays included), and the router/worker content keys agree;
* sweeps are split per owning worker exactly as the ring dictates, rows
  come back merged in request order, and progress events are renumbered
  router-wide;
* identical concurrent cells coalesce at the router — one simulation
  cluster-wide, every client bit-identical;
* a fresh cluster sharing only the shared store answers warm without
  simulating (cross-node warm hits);
* killing a worker mid-use ejects it, the key fails over to a survivor,
  and with no survivors the client gets a retriable ``unavailable`` error;
* ``stats``/``health`` aggregate per-worker counters cluster-wide;
* a routed experiment reproduces the in-process figure exactly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import run_experiment
from repro.experiments.engine import plan_cells
from repro.experiments.engine.cells import execute_cell, make_cell
from repro.service import ServiceError, ServiceUnavailable
from repro.service.protocol import result_to_wire, sweep_cell

#: One representative cell per engine kind (labels per ``make_cell``).
KIND_LABELS = [
    ("baseline", "baseline"),
    ("indexing", "XOR"),
    ("progassoc", "Column_associative"),
    ("colassoc", "ColAssoc_XOR"),
    ("setassoc", "4way"),
    ("assocsweep", "2way"),
    ("bounds", "FullAssoc"),
]

WORKLOAD = "fft"


def _local_reference(kind: str, label: str, config):
    """The in-process engine's answer for one cell (and its cache key)."""
    cell = make_cell(kind, WORKLOAD, label, config)
    plan = plan_cells([cell], config, jobs=1)
    result = execute_cell(
        cell,
        config,
        plan.trace_paths.get(cell.workload),
        plan.profile_paths.get(cell.workload) if cell.needs_profile else None,
    )
    return result, plan.keys[cell]


def _wait_until(predicate, timeout: float = 20.0, what: str = "condition"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, f"timed out waiting for {what}"
        time.sleep(0.02)


class TestDifferential:
    def test_every_cell_kind_is_bit_identical_to_local(
        self, make_cluster, cluster_config
    ):
        """The headline property: routing never changes a single bit."""
        cluster = make_cluster(1)
        worker_addr = cluster.workers[0].addr
        with cluster.client() as client:
            for kind, label in KIND_LABELS:
                reply = client.submit_cell(kind, WORKLOAD, label, arrays=True)
                local, key = _local_reference(kind, label, cluster_config)
                assert reply["result"] == result_to_wire(
                    local, include_arrays=True
                ), f"{kind}/{label} diverged from the in-process engine"
                # Key parity: router, worker and local engine all derived
                # the same content key for the cell.
                assert reply["meta"]["key"] == key
                assert reply["meta"]["worker"] == worker_addr
        assert cluster.total_executed() == len(KIND_LABELS)


class TestSweepRouting:
    LABELS = ["baseline", "XOR", "Odd_Multiplier", "Prime_Modulo", "4way"]

    def test_sweep_splits_by_ring_owner_and_merges_rows(
        self, make_cluster, cluster_config
    ):
        cluster = make_cluster(2)
        router = cluster.router.server
        events = []
        with cluster.client() as client:
            reply = client.sweep(WORKLOAD, self.LABELS, on_event=events.append)

        rows = reply["rows"]
        assert [row["label"] for row in rows] == self.LABELS
        assert all(row["ok"] for row in rows)

        # The split matches the ring's placement exactly.
        cells = [sweep_cell(WORKLOAD, lab, cluster_config) for lab in self.LABELS]
        plan = plan_cells(cells, cluster_config, jobs=1)
        expected_shards: dict[str, int] = {}
        for cell in cells:
            owner = router.ring.owner(plan.keys[cell])
            expected_shards[owner] = expected_shards.get(owner, 0) + 1
        assert reply["meta"]["shards"] == expected_shards
        assert sum(expected_shards.values()) == len(self.LABELS)

        # Each worker only executed the cells the ring assigned to it.
        for i, worker in enumerate(cluster.workers):
            assert worker.stats.cells_executed == expected_shards.get(
                worker.addr, 0
            ), f"worker {i} executed cells it does not own"

        # Events renumbered router-wide: one per cell, done counts 1..N.
        assert len(events) == len(self.LABELS)
        assert sorted(e["done"] for e in events) == list(
            range(1, len(self.LABELS) + 1)
        )
        assert all(e["total"] == len(self.LABELS) for e in events)

    def test_sweep_rows_match_single_worker_run(self, make_cluster):
        split = make_cluster(2)
        solo = make_cluster(1)
        with split.client() as client:
            split_rows = client.sweep(WORKLOAD, self.LABELS, arrays=True)["rows"]
        with solo.client() as client:
            solo_rows = client.sweep(WORKLOAD, self.LABELS, arrays=True)["rows"]
        for a, b in zip(split_rows, solo_rows):
            assert a["result"] == b["result"]


class TestCoalescing:
    N_CLIENTS = 8

    def test_concurrent_identical_cells_simulate_once_cluster_wide(
        self, make_cluster
    ):
        cluster = make_cluster(2)
        barrier = threading.Barrier(self.N_CLIENTS)

        def one_client(_i: int) -> dict:
            with cluster.client() as client:
                barrier.wait(timeout=60)
                return client.submit_cell(
                    "indexing", WORKLOAD, "XOR", arrays=True
                )

        with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
            replies = list(pool.map(one_client, range(self.N_CLIENTS)))

        # Exactly one simulation across the whole cluster.
        assert cluster.total_executed() == 1
        results = [r["result"] for r in replies]
        assert all(r == results[0] for r in results)
        # All 8 landed on the same key, hence the same worker.
        workers = {r["meta"]["worker"] for r in replies}
        assert len(workers) == 1
        router = cluster.router.server
        stats = router.cluster_stats
        # Everyone after the first either joined the router flight or hit
        # the worker-side flight/cache — nobody resimulated.
        assert (
            stats["routes_coalesced"]
            + sum(w.stats.cells_coalesced for w in cluster.workers)
            + sum(w.stats.cells_cache_hits for w in cluster.workers)
            == self.N_CLIENTS - 1
        )


class TestSharedStore:
    def test_cross_node_warm_hit_through_shared_store(self, make_cluster):
        """A fresh cluster sharing only the shared dir never simulates."""
        first = make_cluster(1)
        with first.client() as client:
            warm = client.submit_cell("indexing", WORKLOAD, "XOR", arrays=True)
        assert first.total_executed() == 1

        # The worker's write-behind publisher runs asynchronously; wait for
        # the entry to land in the shared tier before dialing cluster two.
        _wait_until(
            lambda: any(first.shared_dir.rglob("*.npz")),
            what="shared-store publish",
        )

        second = make_cluster(1, shared_dir=first.shared_dir)
        with second.client() as client:
            reply = client.submit_cell("indexing", WORKLOAD, "XOR", arrays=True)
        assert reply["result"] == warm["result"]
        assert second.total_executed() == 0, "warm key was re-simulated"
        assert second.workers[0].stats.cells_cache_hits == 1

    def test_router_store_probe_answers_without_dialing_workers(
        self, make_cluster
    ):
        cluster = make_cluster(1, router_store=True)
        with cluster.client() as client:
            client.submit_cell("indexing", WORKLOAD, "XOR")
            _wait_until(
                lambda: any(cluster.shared_dir.rglob("*.npz")),
                what="shared-store publish",
            )
            reply = client.submit_cell("indexing", WORKLOAD, "XOR")
        assert reply["meta"]["cache_hit"] is True
        assert reply["meta"]["worker"] is None
        router = cluster.router.server
        assert router.cluster_stats["router_cache_hits"] == 1
        assert cluster.total_executed() == 1


class TestFailover:
    def test_dead_worker_is_ejected_and_key_fails_over(self, make_cluster):
        cluster = make_cluster(2)
        router = cluster.router.server

        # Pick the cell's owner *before* killing anything, then kill it.
        with cluster.client() as client:
            first = client.submit_cell("indexing", WORKLOAD, "XOR", arrays=True)
        owner = first["meta"]["worker"]
        victim = next(w for w in cluster.workers if w.addr == owner)
        survivor = next(w for w in cluster.workers if w.addr != owner)
        victim.stop()

        with cluster.client() as client:
            # A *different* key (no store hit anywhere) owned by... whoever;
            # the one we KNOW was owned by the victim is the same cell with
            # a fresh router (no router store) — resubmit it: the victim's
            # link fails, the key fails over, and the survivor answers from
            # scratch or its own path — bit-identically.
            reply = client.submit_cell("indexing", WORKLOAD, "XOR", arrays=True)
        assert reply["result"] == first["result"]
        assert reply["meta"]["worker"] == survivor.addr
        assert router.alive[victim.addr] is False
        assert router.cluster_stats["workers_ejected"] >= 1

        # The survivor keeps serving unrelated keys too.
        with cluster.client() as client:
            assert client.submit_cell("baseline", WORKLOAD, "baseline")["result"]

    def test_all_workers_dead_is_a_retriable_unavailable(self, make_cluster):
        cluster = make_cluster(2, probe_interval=0.1)
        for worker in cluster.workers:
            worker.stop()
        router = cluster.router.server
        _wait_until(
            lambda: not any(router.alive.values()),
            what="prober to eject both workers",
        )
        with cluster.client() as client:
            with pytest.raises(ServiceUnavailable) as exc_info:
                client.submit_cell("indexing", WORKLOAD, "XOR")
            assert exc_info.value.code == "unavailable"
            # The router itself is alive and still answers health.
            assert client.health()["status"] == "ok"
        assert router.cluster_stats["routes_unavailable"] >= 1

    def test_sweep_with_no_workers_fails_soft_per_row(self, make_cluster):
        cluster = make_cluster(1, probe_interval=0.1)
        cluster.workers[0].stop()
        router = cluster.router.server
        _wait_until(
            lambda: not any(router.alive.values()),
            what="prober to eject the worker",
        )
        with cluster.client() as client:
            rows = client.sweep(WORKLOAD, ["baseline", "XOR"])["rows"]
        for row in rows:
            assert row["ok"] is False
            assert row["error"]["code"] == "unavailable"


class TestObservability:
    def test_router_health_reports_ring_and_workers(self, make_cluster):
        cluster = make_cluster(2)
        with cluster.client() as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["workers_alive"] == 2
        assert set(health["workers"]) == {w.addr for w in cluster.workers}
        assert all(w["alive"] for w in health["workers"].values())
        assert health["ring"]["nodes"] == 2

    def test_router_stats_aggregate_worker_counters(self, make_cluster):
        cluster = make_cluster(2)
        with cluster.client() as client:
            client.submit_cell("indexing", WORKLOAD, "XOR")
            client.submit_cell("indexing", WORKLOAD, "Prime_Modulo")
            client.submit_cell("indexing", WORKLOAD, "XOR")  # warm
            stats = client.stats()
        assert stats["role"] == "router"
        cluster_section = stats["cluster"]
        assert set(cluster_section["alive"]) == {w.addr for w in cluster.workers}
        routing = cluster_section["routing"]
        assert routing["routes_forwarded"] >= 2
        totals = cluster_section["worker_cell_totals"]
        assert totals["executed"] == cluster.total_executed() == 2
        assert totals["executed"] == sum(
            (snap or {}).get("cells", {}).get("executed", 0)
            for snap in cluster_section["workers"].values()
        )

    def test_structured_bad_request_propagates(self, make_cluster):
        cluster = make_cluster(1)
        with cluster.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.submit_cell("indexing", "nope", "XOR")
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServiceError) as exc_info:
                client.submit_cell("setassoc", WORKLOAD, "NotAWay")
            assert exc_info.value.code == "bad_request"


class TestRoutedExperiments:
    def test_experiment_matches_in_process_run(
        self, make_cluster, cluster_config
    ):
        cluster = make_cluster(2)
        events = []
        with cluster.client() as client:
            reply = client.run_experiment("fig1", on_event=events.append)
        wire = reply["experiment"]
        local = run_experiment("fig1", cluster_config)
        assert wire["experiment_id"] == local.experiment_id == "fig1"
        assert wire["columns"] == list(local.columns)
        assert wire["rows"] == {k: dict(v) for k, v in local.rows.items()}
        # The figure's cells really ran on the workers, not in the router.
        assert cluster.total_executed() > 0
        assert cluster.router.stats.cells_executed == 0
        assert events, "no progress events streamed"
        assert events[-1]["done"] == events[-1]["total"]
