"""Differential tests: the fastpolicy engines ≡ the sequential engine.

Fourth instalment of the differential-testing contract (see DESIGN.md):
the set-decomposed replay kernels in :mod:`repro.core.fastpolicy` must be
*bit-identical* to driving :class:`~repro.core.caches.SetAssociativeCache`
one access at a time through :func:`~repro.core.simulator.simulate` —
equal :class:`~repro.core.simulator.SimulationResult` (totals, lookup
cycles, per-set histograms, ``extra`` hit classes) **and** equal post-run
cache-object state (contents, policy stamps/counts/bits, the Random
policy's exact generator position), across:

* every registered replacement policy (LRU, FIFO, PLRU, MRU, LFU,
  seeded Random) × every registered indexing scheme × the adversarial
  trace zoo (random, hot-reuse, ping-pong, repeat-heavy, empty, single);
* associativities 1 / 2 / 8 (PLRU power-of-two constraint respected);
* the :func:`~repro.core.fastpolicy.simulate_policy_sweep` sweep path —
  shared set decomposition ≡ the per-cell path ≡ sequential, per-set
  counts included;
* warmup splits, pristine-gate fallbacks (dirty caches take the
  sequential engine but still agree), and engine/config rejection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import CacheGeometry
from repro.core.caches.set_associative import SetAssociativeCache
from repro.core.fastpolicy import (
    FAST_POLICIES,
    has_policy_fast_path,
    policy_miss_flags,
    simulate_policy,
    simulate_policy_set_associative,
    simulate_policy_sweep,
)
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.replacement import POLICIES, RandomPolicy
from repro.core.simulator import simulate
from repro.trace import Trace

TINY4 = CacheGeometry(capacity_bytes=512, line_bytes=16, ways=4, address_bits=16)
SMALL4 = CacheGeometry(capacity_bytes=4096, line_bytes=16, ways=4)


def geometry_with_ways(ways: int) -> CacheGeometry:
    return CacheGeometry(
        capacity_bytes=128 * 16 * ways // 8,
        line_bytes=16,
        ways=ways,
        address_bits=16,
    )


# -- trace zoo --------------------------------------------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << geometry.address_bits, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def hot_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 9) -> Trace:
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 1 << geometry.address_bits, size=64, dtype=np.uint64)
    addrs = pool[rng.integers(0, len(pool), size=n)]
    return Trace(addrs, name="hot")


def conflict_trace(geometry: CacheGeometry, n: int = 3000) -> Trace:
    """ways+1 blocks cycling through one set: every policy's eviction path."""
    line = geometry.line_bytes
    span = geometry.num_sets * line
    k = geometry.ways + 1
    addrs = np.array([(3 * line + i * span) % (1 << geometry.address_bits)
                      for i in range(k)], dtype=np.uint64)
    return Trace(np.tile(addrs, n // k + 1)[:n], name="conflict")


def repeat_heavy_trace(geometry: CacheGeometry, n: int = 2000, seed: int = 13) -> Trace:
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < n:
        addr = int(rng.integers(0, 1 << geometry.address_bits))
        out.extend([addr] * int(rng.integers(1, 9)))
    return Trace(np.array(out[:n], dtype=np.uint64), name="repeats")


def empty_trace() -> Trace:
    return Trace(np.empty(0, dtype=np.uint64), name="empty")


def single_access_trace(geometry: CacheGeometry) -> Trace:
    return Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        hot_trace(geometry),
        conflict_trace(geometry),
        repeat_heavy_trace(geometry),
        empty_trace(),
        single_access_trace(geometry),
    ]


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    factories = [
        lambda: ModuloIndexing(geometry),
        lambda: XorIndexing(geometry),
        lambda: OddMultiplierIndexing(geometry, 9),
        lambda: PrimeModuloIndexing(geometry),
        lambda: BitSelectIndexing(geometry, bit_positions),
        lambda: GivargisIndexing(geometry).fit(fit_addrs),
        lambda: GivargisXorIndexing(geometry).fit(fit_addrs),
        lambda: PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]
    schemes = []
    for make in factories:
        try:
            schemes.append(make())
        except ValueError:
            pass
    return schemes


# -- equality helpers -------------------------------------------------------------


def assert_results_identical(fast, slow, ctx: str) -> None:
    assert fast.model == slow.model, ctx
    assert fast.trace_name == slow.trace_name, ctx
    assert fast.accesses == slow.accesses, ctx
    assert fast.hits == slow.hits, ctx
    assert fast.misses == slow.misses, ctx
    assert fast.lookup_cycles == slow.lookup_cycles, ctx
    assert fast.extra == slow.extra, ctx
    np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_hits, slow.slot_hits, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses, err_msg=ctx)


def assert_cache_state_identical(fast_cache, slow_cache, ctx: str) -> None:
    np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks, err_msg=ctx)
    fp, sp = fast_cache.policy, slow_cache.policy
    assert type(fp) is type(sp), ctx
    if hasattr(sp, "_stamp"):
        np.testing.assert_array_equal(fp._stamp, sp._stamp, err_msg=ctx)
        assert fp._clock == sp._clock, ctx
    if hasattr(sp, "_count"):
        np.testing.assert_array_equal(fp._count, sp._count, err_msg=ctx)
    if hasattr(sp, "_bits"):
        np.testing.assert_array_equal(fp._bits, sp._bits, err_msg=ctx)
    if isinstance(sp, RandomPolicy):
        assert fp._rng.bit_generator.state == sp._rng.bit_generator.state, ctx


# -- the stats-level engine -------------------------------------------------------


class TestStatsEngine:
    @pytest.mark.parametrize("policy", FAST_POLICIES)
    @pytest.mark.parametrize("geometry", [TINY4, SMALL4], ids=["tiny", "small"])
    def test_all_schemes_all_traces(self, geometry, policy):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                ctx = f"{policy}/{scheme.name}/{trace.name}"
                fast = simulate_policy_set_associative(
                    scheme, trace, geometry, policy=policy, seed=3
                )
                slow = simulate_policy_set_associative(
                    scheme, trace, geometry, policy=policy, seed=3,
                    engine="sequential",
                )
                assert_results_identical(fast, slow, ctx)

    @pytest.mark.parametrize("ways", [1, 2, 8])
    @pytest.mark.parametrize("policy", FAST_POLICIES)
    def test_associativities(self, policy, ways):
        geometry = geometry_with_ways(ways)
        scheme = XorIndexing(geometry)
        for trace in (conflict_trace(geometry), random_trace(geometry, n=3000)):
            ctx = f"{policy}/{ways}way/{trace.name}"
            fast = simulate_policy_set_associative(
                scheme, trace, geometry, policy=policy
            )
            slow = simulate_policy_set_associative(
                scheme, trace, geometry, policy=policy, engine="sequential"
            )
            assert_results_identical(fast, slow, ctx)

    @pytest.mark.parametrize("policy", FAST_POLICIES)
    def test_warmup_agrees(self, policy):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        trace = random_trace(geometry, n=2500, seed=41)
        fast = simulate_policy_set_associative(
            scheme, trace, geometry, policy=policy, warmup=500
        )
        slow = simulate_policy_set_associative(
            scheme, trace, geometry, policy=policy, warmup=500, engine="sequential"
        )
        assert_results_identical(fast, slow, f"{policy}/warmup")

    @pytest.mark.parametrize("seed", [0, 1, 2011])
    def test_random_policy_seeds(self, seed):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        trace = random_trace(geometry, n=5000, seed=17)
        fast = simulate_policy_set_associative(
            scheme, trace, geometry, policy="random", seed=seed
        )
        slow = simulate_policy_set_associative(
            scheme, trace, geometry, policy="random", seed=seed, engine="sequential"
        )
        assert_results_identical(fast, slow, f"seed={seed}")

    def test_covers_every_registered_policy(self):
        assert set(FAST_POLICIES) == set(POLICIES)

    def test_miss_flags_match_sequential(self):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        trace = conflict_trace(geometry)
        blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
        indices = scheme.indices_of(trace.addresses)
        for policy in FAST_POLICIES:
            flags = policy_miss_flags(
                blocks, indices, geometry.ways, policy,
                num_sets=geometry.num_sets, seed=5,
            )
            seq = simulate_policy_set_associative(
                scheme, trace, geometry, policy=policy, seed=5, engine="sequential"
            )
            assert int(flags.sum()) == seq.misses, policy

    def test_rejections(self):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        trace = single_access_trace(geometry)
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_policy_set_associative(
                scheme, trace, geometry, policy="fifo", engine="turbo"
            )
        with pytest.raises(ValueError, match="unknown replacement policy"):
            simulate_policy_set_associative(scheme, trace, geometry, policy="bogus")
        with pytest.raises(ValueError, match="associativity"):
            simulate_policy_set_associative(
                scheme, trace, geometry, ways=2, policy="fifo"
            )
        # CacheGeometry itself enforces power-of-two ways, so the PLRU
        # constraint is only reachable through the raw-array kernel API.
        blocks = np.array([1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="power-of-two"):
            policy_miss_flags(blocks, indices, 6, "plru")


# -- the sweep path ---------------------------------------------------------------


class TestPolicySweep:
    @pytest.mark.parametrize("geometry", [TINY4, SMALL4], ids=["tiny", "small"])
    def test_sweep_equals_per_cell_equals_sequential(self, geometry):
        scheme = XorIndexing(geometry)
        policies = list(FAST_POLICIES)
        for trace in trace_zoo(geometry):
            swept = simulate_policy_sweep(scheme, trace, geometry, policies, seed=3)
            seq = simulate_policy_sweep(
                scheme, trace, geometry, policies, seed=3, engine="sequential"
            )
            assert len(swept) == len(policies)
            for policy, a, b in zip(policies, swept, seq):
                ctx = f"{policy}/{trace.name}"
                assert_results_identical(a, b, ctx)
                cell = simulate_policy_set_associative(
                    scheme, trace, geometry, policy=policy, seed=3
                )
                assert_results_identical(a, cell, ctx + "/per-cell")

    def test_sweep_validates_before_work(self):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        with pytest.raises(ValueError, match="unknown replacement policy"):
            simulate_policy_sweep(
                scheme, random_trace(geometry), geometry, ["lru", "bogus"]
            )

    def test_sweep_preserves_order_and_models(self):
        geometry = TINY4
        scheme = ModuloIndexing(geometry)
        policies = ["mru", "lru", "fifo"]
        results = simulate_policy_sweep(
            scheme, hot_trace(geometry), geometry, policies
        )
        assert [r.model for r in results] == [
            f"set_associative[{scheme.name},4way,{p}]" for p in policies
        ]


# -- the cache-object dispatcher --------------------------------------------------


class TestSimulatePolicy:
    @pytest.mark.parametrize("policy", FAST_POLICIES)
    def test_auto_equals_sequential_with_state(self, policy):
        geometry = TINY4
        for trace in trace_zoo(geometry):
            ctx = f"{policy}/{trace.name}"
            fast_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
            slow_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
            assert has_policy_fast_path(fast_cache), ctx
            fast = simulate_policy(fast_cache, trace)
            slow = simulate(slow_cache, trace)
            assert_results_identical(fast, slow, ctx)
            assert_cache_state_identical(fast_cache, slow_cache, ctx)
            fast_cache.stats.check_invariants()

    @pytest.mark.parametrize("policy", FAST_POLICIES)
    def test_dirty_cache_falls_back_but_agrees(self, policy):
        """A second run over the same object is not pristine: the dispatcher
        must take the sequential engine and still match it exactly."""
        geometry = TINY4
        t1 = hot_trace(geometry, n=800, seed=3)
        t2 = random_trace(geometry, n=800, seed=4)
        fast_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
        slow_cache = SetAssociativeCache(geometry, policy=policy, seed=11)
        simulate_policy(fast_cache, t1)
        simulate(slow_cache, t1)
        assert not has_policy_fast_path(fast_cache)
        fast = simulate_policy(fast_cache, t2)
        slow = simulate(slow_cache, t2)
        assert_results_identical(fast, slow, f"{policy}/dirty")
        assert_cache_state_identical(fast_cache, slow_cache, f"{policy}/dirty")

    def test_warmup_agrees(self):
        geometry = TINY4
        trace = random_trace(geometry, n=2000, seed=19)
        fast_cache = SetAssociativeCache(geometry, policy="fifo")
        slow_cache = SetAssociativeCache(geometry, policy="fifo")
        fast = simulate_policy(fast_cache, trace, warmup=300)
        slow = simulate(slow_cache, trace, warmup=300)
        assert_results_identical(fast, slow, "warmup")
        assert_cache_state_identical(fast_cache, slow_cache, "warmup")

    def test_invariant_checking_falls_back(self):
        geometry = TINY4
        trace = random_trace(geometry, n=500, seed=23)
        res = simulate_policy(
            SetAssociativeCache(geometry, policy="lfu"),
            trace,
            check_invariants_every=100,
        )
        seq = simulate(SetAssociativeCache(geometry, policy="lfu"), trace)
        assert res.misses == seq.misses

    def test_subclass_falls_back(self):
        class Sub(SetAssociativeCache):
            pass

        geometry = TINY4
        assert not has_policy_fast_path(Sub(geometry, policy="fifo"))
        trace = hot_trace(geometry, n=400)
        res = simulate_policy(Sub(geometry, policy="fifo"), trace)
        seq = simulate(SetAssociativeCache(geometry, policy="fifo"), trace)
        assert res.misses == seq.misses

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_policy(
                SetAssociativeCache(TINY4), single_access_trace(TINY4), engine="turbo"
            )
