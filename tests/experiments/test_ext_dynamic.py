"""ext-dynamic experiment tests."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import PaperConfig, run_experiment
from repro.experiments.ext_dynamic import PHASE_PAIRS


@pytest.fixture(scope="module")
def config(tmp_path_factory) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=30_000,
        trace_cache_dir=tmp_path_factory.mktemp("traces-dyn"),
    )


class TestExtDynamic:
    def test_rows_are_phase_pairs(self, config):
        r = run_experiment("ext-dynamic", config)
        assert len(r.rows) == len(PHASE_PAIRS) + 1

    def test_dynamic_beats_worst_static(self, config):
        """On average the switching cache must beat the weaker fixed choice
        (it can always fall back to it) — the profiling-free value claim."""
        r = run_experiment("ext-dynamic", config)
        avg = r.rows["Average"]
        assert avg["dynamic"] >= min(avg["static_xor"], avg["static_odd"]) - 5.0

    def test_dynamic_bounded_by_best_static_plus_noise(self, config):
        """Switching pays flush costs, so it cannot magically exceed the
        per-pair best static by much."""
        r = run_experiment("ext-dynamic", config)
        for label, row in r.rows.items():
            if label == "Average":
                continue
            assert row["dynamic"] <= row["best_static"] + 10.0

    def test_switch_counts_recorded(self, config):
        r = run_experiment("ext-dynamic", config)
        keys = [k for k in r.arrays if k.endswith("/switches")]
        assert len(keys) == len(PHASE_PAIRS)
        assert any(r.arrays[k] >= 1 for k in keys)
