"""Parallel experiment execution engine.

Every paper figure is, at heart, a grid of independent *cells* — one
(workload trace, indexing scheme / cache model) simulation per bar of the
figure.  This subpackage decomposes those grids into
:class:`~repro.experiments.engine.cells.SimCell` specs, fans the missing
cells out over a ``ProcessPoolExecutor`` (``jobs=1`` is a deterministic
in-process fallback) and memoizes every per-cell
:class:`~repro.core.simulator.SimulationResult` in a content-addressed
on-disk :class:`~repro.experiments.engine.cache.ResultCache` keyed by
(trace fingerprint, geometry, scheme parameters, engine version).

Parallel results are bit-identical to sequential ones: each cell is a pure
function of its spec, and aggregation always happens in the declared cell
order regardless of completion order.  The differential-test layer
(``tests/core/test_fastsim_differential.py`` and
``tests/experiments/test_parallel_engine.py``) enforces both properties.
"""

from .cache import ENGINE_VERSION, ResultCache, cell_key, trace_fingerprint
from .store import LocalDirStore, ResultStore, SharedDirStore, make_store
from .cells import (
    CellExecutionError,
    KernelSpec,
    SimCell,
    build_kernel_scheme,
    execute_cell,
    kernel_cell_spec,
    make_cell,
)
from .families import SweepFamily, detect_families, execute_family
from .parallel import (
    CellPlan,
    EngineStats,
    ExperimentEngine,
    effective_jobs,
    engine_pool_scope,
    plan_cells,
    progress_scope,
    run_cells,
)

__all__ = [
    "ENGINE_VERSION",
    "ResultCache",
    "ResultStore",
    "LocalDirStore",
    "SharedDirStore",
    "make_store",
    "cell_key",
    "trace_fingerprint",
    "SimCell",
    "KernelSpec",
    "SweepFamily",
    "make_cell",
    "execute_cell",
    "execute_family",
    "detect_families",
    "kernel_cell_spec",
    "build_kernel_scheme",
    "CellExecutionError",
    "CellPlan",
    "ExperimentEngine",
    "EngineStats",
    "effective_jobs",
    "engine_pool_scope",
    "plan_cells",
    "progress_scope",
    "run_cells",
]
