"""Prime-modulo indexing (paper Section II.B, after Kharbutli et al. 2004).

``index = block_address mod p`` for the largest prime ``p`` ≤ the number of
sets.  Dividing by a prime breaks up the power-of-two strides that alias under
conventional indexing.  The cost — noted by the paper — is *fragmentation*:
sets ``p .. num_sets-1`` are never used.  :attr:`usable_sets` reports ``p`` so
the uniformity metrics can be computed over the live sets only.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from .base import IndexingScheme, register_scheme

__all__ = ["PrimeModuloIndexing", "is_prime", "largest_prime_at_most", "primes_up_to"]


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality (fine for n ≤ a few million)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def largest_prime_at_most(n: int) -> int:
    """Largest prime ``p`` with ``p <= n``; raises for n < 2."""
    if n < 2:
        raise ValueError("no prime <= {}".format(n))
    p = n
    while not is_prime(p):
        p -= 1
    return p


def primes_up_to(n: int) -> list[int]:
    """All primes ≤ n via a simple sieve (used by tests and sweeps)."""
    if n < 2:
        return []
    sieve = np.ones(n + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(n**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return [int(p) for p in np.flatnonzero(sieve)]


@register_scheme
class PrimeModuloIndexing(IndexingScheme):
    """``index = (address >> offset_bits) mod p``, ``p`` prime ≤ num_sets."""

    name = "prime_modulo"

    def __init__(self, geometry: CacheGeometry, prime: int | None = None):
        super().__init__(geometry)
        if prime is None:
            prime = largest_prime_at_most(geometry.num_sets)
        if not is_prime(prime):
            raise ValueError(f"{prime} is not prime")
        if prime > geometry.num_sets:
            raise ValueError("prime exceeds the number of sets")
        self.prime = prime
        self._shift = geometry.offset_bits

    @property
    def usable_sets(self) -> int:
        return self.prime

    @property
    def fragmented_sets(self) -> int:
        """Sets that can never be indexed (the fragmentation cost)."""
        return self.geometry.num_sets - self.prime

    def index_of(self, address: int) -> int:
        return (address >> self._shift) % self.prime

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        blocks = np.asarray(addresses, dtype=np.uint64) >> np.uint64(self._shift)
        return (blocks % np.uint64(self.prime)).astype(np.int64)
