#!/usr/bin/env python
"""Bring your own workload: write a kernel, register it, evaluate it.

The workload framework is not limited to the built-in MiBench/SPEC kernels —
any algorithm that narrates its memory references through a
:class:`~repro.trace.recorder.Recorder` becomes a first-class workload.
This example implements a small hash-join (a classic database kernel with a
build/probe phase split) and runs it through the paper's technique line-up.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import sys

from repro import PAPER_L1_GEOMETRY, simulate, simulate_indexing
from repro.core.caches import AdaptiveGroupAssociativeCache, ColumnAssociativeCache
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing, XorIndexing
from repro.trace.recorder import Recorder
from repro.workloads import WORKLOAD_REGISTRY, get_workload, register_workload
from repro.workloads.base import Workload

# Allow re-running the example inside one process (tests, notebooks).
WORKLOAD_REGISTRY.pop("hashjoin", None)


@register_workload
class HashJoinWorkload(Workload):
    """Build a hash table over one relation, probe it with another."""

    name = "hashjoin"
    suite = "custom"
    description = "Hash join: sequential build over R, random probes from S"
    access_pattern = "bucket-array scatter + tuple streaming"

    def kernel(self, m: Recorder, scale: float) -> None:
        n_build = self.scaled(4000, scale, minimum=16)
        n_probe = self.scaled(12000, scale, minimum=16)
        n_buckets = 1 << 12
        r_tuples = m.space.heap_array(16, n_build, "relation_R")
        s_tuples = m.space.heap_array(16, n_probe, "relation_S")
        buckets = m.space.heap_array(8, n_buckets, "bucket_heads")
        nodes = m.space.heap_array(24, n_build, "chain_nodes")

        table: dict[int, list[int]] = {}
        keys = [int(k) for k in m.rng.integers(0, n_build * 2, size=n_build)]
        # Build phase: stream R, scatter into buckets.
        for i, key in enumerate(keys):
            m.load_elem(r_tuples, i)
            b = hash(key) % n_buckets
            m.load_elem(buckets, b)
            m.store_elem(buckets, b)
            m.store_elem(nodes, i)
            table.setdefault(b, []).append(i)
        # Probe phase: stream S, chase bucket chains.
        matches = 0
        probe_keys = [int(k) for k in m.rng.integers(0, n_build * 2, size=n_probe)]
        for j, key in enumerate(probe_keys):
            m.load_elem(s_tuples, j)
            b = hash(key) % n_buckets
            m.load_elem(buckets, b)
            for i in table.get(b, []):
                m.load_elem(nodes, i)
                if keys[i] == key:
                    matches += 1
        m.builder.meta["matches"] = matches


def main() -> int:
    g = PAPER_L1_GEOMETRY
    trace = get_workload("hashjoin").generate(seed=7, ref_limit=80_000)
    print(f"hashjoin: {len(trace)} refs, {trace.meta.get('matches', '?')} join matches\n")

    base = simulate_indexing(ModuloIndexing(g), trace, g)
    print(f"{'technique':24s} {'miss rate':>10s} {'vs baseline':>12s}")
    print("-" * 48)
    print(f"{'modulo (baseline)':24s} {base.miss_rate:10.4f} {'':>12s}")
    for name, run in (
        ("xor", lambda: simulate_indexing(XorIndexing(g), trace, g)),
        ("odd_multiplier(31)", lambda: simulate_indexing(OddMultiplierIndexing(g, 31), trace, g)),
        ("column-associative", lambda: simulate(ColumnAssociativeCache(g), trace)),
        ("adaptive", lambda: simulate(AdaptiveGroupAssociativeCache(g), trace)),
    ):
        res = run()
        delta = 100.0 * (base.misses - res.misses) / max(base.misses, 1)
        print(f"{name:24s} {res.miss_rate:10.4f} {delta:+11.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
