"""Direct-mapped, set-associative and fully-associative model tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import (
    BeladyCache,
    DirectMappedCache,
    FullyAssociativeCache,
    SetAssociativeCache,
)
from repro.core.indexing import XorIndexing
from repro.core.simulator import simulate
from repro.trace import Trace, sequential_sweep, zipf_trace

G = PAPER_L1_GEOMETRY


def lru_reference_misses(blocks, num_sets, ways, index_fn):
    """Oracle: per-set LRU lists in plain Python."""
    sets: dict[int, list[int]] = {}
    misses = 0
    for b in blocks:
        s = index_fn(b)
        line = sets.setdefault(s, [])
        if b in line:
            line.remove(b)
            line.append(b)
        else:
            misses += 1
            if len(line) >= ways:
                line.pop(0)
            line.append(b)
    return misses


class TestDirectMapped:
    def test_requires_one_way(self):
        with pytest.raises(ValueError):
            DirectMappedCache(CacheGeometry(1024, 32, 2))

    def test_cold_then_hit(self):
        c = DirectMappedCache(G)
        assert not c.access(0x1000).hit
        assert c.access(0x1000).hit
        assert c.access(0x1010).hit  # same line
        assert c.stats.misses == 1
        assert c.stats.hits == 2

    def test_conflict_eviction(self):
        c = DirectMappedCache(G)
        a, b = 0x0, 32 * 1024  # same set, different tags
        c.access(a)
        r = c.access(b)
        assert not r.hit
        assert r.evicted_block == 0
        assert not c.access(a).hit

    def test_contents_and_flush(self):
        c = DirectMappedCache(G)
        c.access(0x40)
        c.access(0x80)
        assert c.contents() == {2, 4}
        c.flush()
        assert c.contents() == set()

    def test_against_oracle(self, zipf):
        c = DirectMappedCache(G)
        res = simulate(c, zipf)
        blocks = [int(b) for b in zipf.blocks(G.offset_bits)]
        expected = lru_reference_misses(blocks, G.num_sets, 1, lambda b: b & 1023)
        assert res.misses == expected

    def test_custom_indexing_changes_sets(self):
        c = DirectMappedCache(G, XorIndexing(G))
        addr = G.rebuild_address(tag=3, index=100)
        r = c.access(addr)
        assert r.primary_slot == XorIndexing(G).index_of(addr)


class TestSetAssociative:
    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_against_lru_oracle(self, ways, zipf):
        g = CacheGeometry(32 * 1024, 32, ways)
        c = SetAssociativeCache(g, policy="lru")
        res = simulate(c, zipf)
        blocks = [int(b) for b in zipf.blocks(g.offset_bits)]
        expected = lru_reference_misses(blocks, g.num_sets, ways, lambda b: b & (g.num_sets - 1))
        assert res.misses == expected

    def test_higher_associativity_helps_conflicts(self):
        """k blocks aliasing one set all fit in a k-way cache."""
        g2 = CacheGeometry(32 * 1024, 32, 2)
        dm = DirectMappedCache(G)
        sa = SetAssociativeCache(g2)
        # Two blocks in the same 2-way set, round-robin.
        addrs = np.tile(np.array([0, 64 * 1024], dtype=np.uint64), 100)
        t = Trace(addrs, name="pair")
        assert simulate(dm, t).misses > simulate(sa, t).misses

    def test_fills_invalid_ways_first(self):
        g = CacheGeometry(128, 32, 2, address_bits=16)
        c = SetAssociativeCache(g)
        c.access(0)
        r = c.access(64)  # same set (2 sets of 2 ways)
        assert r.evicted_block is None

    def test_policy_shape_mismatch(self):
        from repro.core.replacement import LRUPolicy

        with pytest.raises(ValueError):
            SetAssociativeCache(
                CacheGeometry(1024, 32, 2), policy=LRUPolicy(4, 4)
            )

    def test_random_policy_deterministic(self, zipf):
        g = CacheGeometry(4096, 32, 4)
        r1 = simulate(SetAssociativeCache(g, policy="random", seed=3), zipf)
        r2 = simulate(SetAssociativeCache(g, policy="random", seed=3), zipf)
        assert r1.misses == r2.misses


class TestFullyAssociative:
    def test_no_conflict_misses(self):
        """Any working set <= capacity incurs only cold misses."""
        g = CacheGeometry(1024, 32, 1, address_bits=20)
        c = FullyAssociativeCache(g)
        addrs = np.tile(np.arange(32, dtype=np.uint64) * np.uint64(1024), 50)
        res = simulate(c, Trace(addrs, name="resident"))
        assert res.misses == 32  # one cold miss per block

    def test_lru_eviction_order(self):
        g = CacheGeometry(64, 32, 1, address_bits=16)  # 2 lines
        c = FullyAssociativeCache(g)
        c.access(0)
        c.access(32)
        c.access(64)  # evicts block 0
        assert not c.access(0).hit

    def test_fifo_vs_lru_differ(self):
        g = CacheGeometry(64, 32, 1, address_bits=16)
        lru = FullyAssociativeCache(g, policy="lru")
        fifo = FullyAssociativeCache(g, policy="fifo")
        pattern = [0, 32, 0, 64, 0]  # touch keeps 0 alive in LRU only
        lru_hits = sum(lru.access(a).hit for a in pattern)
        fifo_hits = sum(fifo.access(a).hit for a in pattern)
        assert lru_hits > fifo_hits

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(G, policy="plru")


class TestBelady:
    def test_lower_bounds_lru(self, zipf):
        g = CacheGeometry(2048, 32, 1, address_bits=32)
        blocks = zipf.blocks(g.offset_bits).astype(np.int64)
        belady = BeladyCache(g, blocks)
        res_b = simulate(belady, zipf)
        res_l = simulate(FullyAssociativeCache(g), zipf)
        assert res_b.misses <= res_l.misses

    def test_out_of_order_access_rejected(self):
        g = CacheGeometry(64, 32, 1, address_bits=16)
        c = BeladyCache(g, np.array([0, 1, 2], dtype=np.int64))
        c.access(0)
        with pytest.raises(RuntimeError):
            c.access(0x40)  # trace says block 1 next

    def test_optimal_on_cyclic_pattern(self):
        """Cyclic sweep of N+1 blocks over N lines: MIN gets hits, LRU gets
        zero — the textbook Belady example."""
        g = CacheGeometry(64, 32, 1, address_bits=16)  # 2 lines
        blocks = np.tile(np.array([0, 1, 2], dtype=np.int64), 20)
        addrs = (blocks.astype(np.uint64)) << np.uint64(5)
        t = Trace(addrs, name="cyclic")
        res_b = simulate(BeladyCache(g, blocks), t)
        res_l = simulate(FullyAssociativeCache(g), t)
        assert res_l.miss_rate == 1.0
        assert res_b.miss_rate < 1.0


class TestStatsInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=300))
    def test_two_layer_consistency(self, addrs):
        c = DirectMappedCache(G)
        for a in addrs:
            c.access(a)
        c.stats.check_invariants()

    def test_miss_rate_bounds(self, uniform):
        res = simulate(DirectMappedCache(G), uniform)
        assert 0.0 <= res.miss_rate <= 1.0
        assert res.hits + res.misses == res.accesses
