"""Figure 4 — % reduction in miss rate for the indexing schemes.

For each MiBench benchmark: XOR, odd-multiplier, prime-modulo, Givargis and
Givargis-XOR indexing versus the conventional direct-mapped baseline.
Positive bars = fewer misses.  Paper shape: mixed signs everywhere, no
universal winner, Givargis worst on average (with catastrophic regressions
whose baselines are near zero — their -5e8% bar for susan).
"""

from __future__ import annotations

from ..core.simulator import simulate_indexing
from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import (
    baseline_result,
    indexing_lineup,
    profile_trace,
    register_experiment,
    workload_trace,
)

__all__ = ["run_fig04", "INDEXING_COLUMNS"]

INDEXING_COLUMNS = ["XOR", "Odd_Multiplier", "Prime_Modulo", "Givargis", "Givargis_Xor"]


_CACHE: dict[tuple, ExperimentResult] = {}


@register_experiment("fig4")
def run_fig04(config: PaperConfig) -> ExperimentResult:
    # Figures 9/10 reuse this sweep's per-set arrays; cache one config.
    key = (config.ref_limit, config.seed, config.workload_scale, config.odd_multiplier)
    if key in _CACHE:
        return _CACHE[key]
    result = _run_fig04(config)
    _CACHE.clear()
    _CACHE[key] = result
    return result


def _run_fig04(config: PaperConfig) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="% reduction in miss rate, indexing schemes vs conventional",
        columns=INDEXING_COLUMNS,
    )
    for bench in MIBENCH_ORDER:
        trace = workload_trace(bench, config)
        base = baseline_result(trace, config)
        schemes = indexing_lineup(
            config.geometry, trace, config, train_trace=profile_trace(bench, config)
        )
        row = {}
        for label, scheme in schemes.items():
            sim = simulate_indexing(scheme, trace, config.geometry)
            row[label] = percent_reduction(sim.misses, base.misses)
            result.arrays[f"{bench}/{label}/misses_per_set"] = sim.slot_misses
        result.arrays[f"{bench}/baseline/misses_per_set"] = base.slot_misses
        result.add_row(bench, row)
    result.add_average_row()
    result.note("paper shape: mixed signs, no universal winner, Givargis worst average")
    return result
