"""Ablation: B-cache operating point (MF, BAS).

DESIGN.md §5.1 — the paper measures the B-cache as the weakest scheme while
citing Zhang's 8-way-equivalence claim.  This bench shows both are right:
the claim holds at a large operating point (MF=8, BAS=8) and fails at the
small one (MF=2, BAS=2) the comparison figures use.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.core.caches import BalancedCache, DirectMappedCache, SetAssociativeCache
from repro.core.simulator import simulate
from repro.experiments.runner import workload_trace


@pytest.mark.parametrize("mf,bas", [(1, 2), (2, 2), (2, 4), (4, 4), (8, 8)])
def test_bcache_operating_points(benchmark, config, mf, bas):
    trace = workload_trace("fft", config)
    g = config.geometry

    def run():
        return simulate(BalancedCache(g, mapping_factor=mf, bas=bas), trace)

    result = run_once(benchmark, run)
    dm = simulate(DirectMappedCache(g), trace)
    print(f"\nMF={mf} BAS={bas}: miss_rate={result.miss_rate:.4f} (DM {dm.miss_rate:.4f})")
    assert result.misses <= dm.misses * 1.01


def test_bcache_8way_claim(benchmark, config):
    """Zhang: a balanced cache can reach 8-way-equivalent miss rates."""
    trace = workload_trace("fft", config)
    g = config.geometry

    def run():
        big = simulate(BalancedCache(g, mapping_factor=8, bas=8), trace)
        sa8 = simulate(SetAssociativeCache(g.with_ways(8)), trace)
        return big, sa8

    big, sa8 = run_once(benchmark, run)
    print(f"\nB-cache(8,8)={big.miss_rate:.4f} vs 8-way={sa8.miss_rate:.4f}")
    assert big.misses <= sa8.misses * 1.25

    small = simulate(BalancedCache(g, mapping_factor=2, bas=2), trace)
    # The small operating point is clearly weaker than the big one on at
    # least conflict-heavy traces — the source of the paper's ordering.
    assert small.misses >= big.misses
