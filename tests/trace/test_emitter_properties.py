"""Property-based tests for the bulk emission layer.

The golden hashes lock the eight rewritten kernels end to end; these
Hypothesis properties lock the *emitters themselves* over arbitrary
programs, so a regression in truncation, flag alignment or buffering is
caught at the primitive with a shrunken counterexample:

* **bulk ≡ scalar** — any interleaving of scalar verbs and bulk emitters
  produces the trace the equivalent scalar loop produces, for any
  ``ref_limit`` (including limits landing mid-stream and mid-buffer);
* **exact cut points** — a limited trace is exactly the unlimited trace's
  prefix, of length ``min(total, ref_limit)``;
* **threshold invariance** — the pending buffer's flush chunking (any
  threshold ≥ 1) never shows up in the trace;
* **row-major zip** — ``interleave_streams`` is the flattened classic loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.recorder import Recorder, TraceComplete, interleave_streams

# -- op-program strategy ---------------------------------------------------------------

_addr = st.integers(min_value=0, max_value=(1 << 40) - 1)
_flag = st.booleans()

_scalar_op = st.tuples(st.just("scalar"), _addr, _flag)
_pattern_op = st.tuples(
    st.just("pattern"),
    st.lists(st.tuples(_addr, _flag), min_size=0, max_size=40),
)
_strided_op = st.tuples(
    st.just("strided"),
    _addr,
    st.integers(min_value=-512, max_value=512),
    st.integers(min_value=0, max_value=40),
    _flag,
)
_program = st.lists(st.one_of(_scalar_op, _pattern_op, _strided_op), max_size=12)


def _apply(rec: Recorder, op, bulk: bool) -> None:
    """Run one op through the bulk API or its scalar reference loop."""
    kind = op[0]
    if kind == "scalar":
        _, addr, w = op
        (rec.store if w else rec.load)(addr)
    elif kind == "pattern":
        _, events = op
        if bulk:
            addrs = np.array([a for a, _ in events], dtype=np.uint64)
            flags = np.array([w for _, w in events], dtype=bool)
            rec.pattern_stream(addrs, flags)
        else:
            for a, w in events:
                (rec.store if w else rec.load)(a)
    elif kind == "strided":
        _, start, stride, count, w = op
        if bulk:
            rec.strided_loop(start, stride, count, w)
        else:
            for k in range(count):
                a = (start + k * stride) % (1 << 64)
                (rec.store if w else rec.load)(a)
    else:  # pragma: no cover - defensive
        raise AssertionError(kind)


def _run(program, ref_limit, *, bulk: bool, threshold: int | None = None):
    rec = Recorder("prop", ref_limit=ref_limit, bulk=bulk)
    if threshold is not None and rec.pend is not None:
        rec.pend.threshold = threshold
    try:
        for op in program:
            _apply(rec, op, bulk)
    except TraceComplete:
        pass
    return rec.build()


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.addresses, b.addresses)
    np.testing.assert_array_equal(a.is_write, b.is_write)


# -- properties ------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(program=_program, ref_limit=st.one_of(st.none(), st.integers(1, 80)))
def test_bulk_equals_scalar(program, ref_limit):
    _assert_traces_equal(
        _run(program, ref_limit, bulk=True), _run(program, ref_limit, bulk=False)
    )


@settings(max_examples=80, deadline=None)
@given(program=_program, ref_limit=st.integers(1, 80))
def test_limited_trace_is_prefix_of_unlimited(program, ref_limit):
    full = _run(program, None, bulk=True)
    cut = _run(program, ref_limit, bulk=True)
    want = min(len(full), ref_limit)
    assert len(cut) == want
    np.testing.assert_array_equal(cut.addresses, full.addresses[:want])
    np.testing.assert_array_equal(cut.is_write, full.is_write[:want])


@settings(max_examples=80, deadline=None)
@given(
    program=_program,
    ref_limit=st.one_of(st.none(), st.integers(1, 80)),
    threshold=st.integers(min_value=1, max_value=16),
)
def test_pending_threshold_is_invisible(program, ref_limit, threshold):
    # Flush chunk boundaries (including flushes forced mid-op by tiny
    # thresholds) must never change the emitted trace.
    _assert_traces_equal(
        _run(program, ref_limit, bulk=True, threshold=threshold),
        _run(program, ref_limit, bulk=True),
    )


@settings(max_examples=100, deadline=None)
@given(
    rows=st.integers(0, 20),
    cols=st.integers(1, 4),
    data=st.data(),
)
def test_interleave_streams_is_row_major(rows, cols, data):
    columns = []
    for _ in range(cols):
        addrs = np.array(
            data.draw(st.lists(_addr, min_size=rows, max_size=rows)), dtype=np.uint64
        )
        per_row = data.draw(st.booleans())
        if per_row:
            flags = np.array(
                data.draw(st.lists(_flag, min_size=rows, max_size=rows)), dtype=bool
            )
        else:
            flags = data.draw(_flag)
        columns.append((addrs, flags))
    out_a, out_w = interleave_streams(*columns)
    assert out_a.size == out_w.size == rows * cols
    for i in range(rows):
        for j, (a, w) in enumerate(columns):
            assert out_a[i * cols + j] == a[i]
            want = w if np.ndim(w) == 0 else w[i]
            assert out_w[i * cols + j] == want


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(0, 12),
    ref_limit=st.one_of(st.none(), st.integers(1, 40)),
    data=st.data(),
)
def test_interleaved_stream_equals_scalar_loop(rows, ref_limit, data):
    a = np.array(data.draw(st.lists(_addr, min_size=rows, max_size=rows)), np.uint64)
    b = np.array(data.draw(st.lists(_addr, min_size=rows, max_size=rows)), np.uint64)
    c = np.array(data.draw(st.lists(_addr, min_size=rows, max_size=rows)), np.uint64)

    bulk = Recorder("prop", ref_limit=ref_limit, bulk=True)
    try:
        bulk.interleaved_stream((b, False), (c, False), (a, True))
    except TraceComplete:
        pass
    ref = Recorder("prop", ref_limit=ref_limit, bulk=False)
    try:
        for i in range(rows):  # the STREAM-triad reference loop
            ref.load(b[i])
            ref.load(c[i])
            ref.store(a[i])
    except TraceComplete:
        pass
    _assert_traces_equal(bulk.build(), ref.build())


def test_pattern_stream_rejects_misaligned_flags():
    rec = Recorder("prop", bulk=True)
    import pytest

    with pytest.raises(ValueError):
        rec.pattern_stream(np.arange(4, dtype=np.uint64), np.zeros(3, dtype=bool))


def test_strided_loop_rejects_negative_count():
    import pytest

    with pytest.raises(ValueError):
        Recorder("prop", bulk=True).strided_loop(0, 8, -1)
