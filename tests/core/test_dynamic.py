"""Dynamic index-switching cache tests (paper's future-work direction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.caches import DirectMappedCache
from repro.core.dynamic import DynamicIndexCache
from repro.core.indexing import (
    GivargisIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import simulate
from repro.trace import Trace, strided_trace, uniform_trace

G = PAPER_L1_GEOMETRY


def two_phase_trace(n_each: int = 40_000) -> Trace:
    """Phase A: cache-friendly locality (modulo fine).  Phase B: capacity-
    stride pathology (any hash fine, modulo catastrophic)."""
    a = uniform_trace(n_each, span_bytes=16 * 1024, seed=1)  # resident WS
    b = strided_trace(n_each, stride=32 * 1024, working_set=16 * 32 * 1024)
    return a.concat(b).with_name("two_phase")


def candidates():
    return [
        XorIndexing(G),
        OddMultiplierIndexing(G, 31),
        PrimeModuloIndexing(G),
    ]


class TestConstruction:
    def test_rejects_trainable_candidates(self):
        with pytest.raises(ValueError):
            DynamicIndexCache(G, [GivargisIndexing(G)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DynamicIndexCache(G, [])

    def test_starts_conventional(self):
        c = DynamicIndexCache(G, candidates())
        assert isinstance(c.current, ModuloIndexing)


class TestAdaptation:
    def test_switches_on_phase_change(self):
        trace = two_phase_trace()
        cache = DynamicIndexCache(G, candidates(), window=2048, history=8192)
        simulate(cache, trace)
        assert cache.switches >= 1
        assert cache.stats.extra.get("scheme_switches", 0) == cache.switches

    def test_beats_static_modulo_on_phased_trace(self):
        trace = two_phase_trace()
        dynamic = DynamicIndexCache(G, candidates(), window=2048, history=8192)
        dyn = simulate(dynamic, trace)
        static = simulate(DirectMappedCache(G), trace)
        assert dyn.misses < static.misses * 0.6

    def test_stays_put_on_stable_trace(self):
        trace = uniform_trace(60_000, span_bytes=16 * 1024, seed=4)
        cache = DynamicIndexCache(G, candidates(), window=2048)
        simulate(cache, trace)
        assert cache.switches == 0

    def test_switch_log_records_tick_and_name(self):
        trace = two_phase_trace()
        cache = DynamicIndexCache(G, candidates(), window=2048)
        simulate(cache, trace)
        for tick, name in cache.switch_log:
            assert 0 < tick <= len(trace)
            assert name in {"xor", "odd_multiplier", "prime_modulo", "modulo"}

    def test_flush_cost_is_real(self):
        """Immediately after a switch the cache re-faults its working set."""
        trace = two_phase_trace(20_000)
        cache = DynamicIndexCache(G, candidates(), window=2048)
        simulate(cache, trace)
        if cache.switches:
            assert cache.contents() != set()  # refilled after flush
