"""Patel application-specific index search (paper Section II.F, ICCAD'04).

Patel et al. search over index-bit combinations for the one minimising the
conflict cost of a trace (paper Eqs. 6-7: the summed conflict patterns, i.e.
the number of times an address finds its set occupied by a different block).
The paper *describes* the method but excludes it from the evaluation as
intractable — an exhaustive search over C(27, 10) ≈ 8.4M bit subsets, each
needing a whole-trace simulation.

We implement a bounded variant as an extension, with the exact cost function
(direct-mapped miss count via the vectorised simulator) and two budgeted
search strategies:

* greedy forward selection — grow the bit set one position at a time, keeping
  the bit whose addition yields the lowest miss count;
* first-improvement local search — swap selected/unselected bits while any
  swap lowers the cost, up to a move budget.

With both budgets set high and a tiny address width this recovers the true
optimum (verified in tests against brute force); with defaults it is a
practical approximation the original authors also resort to for large
traces.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..address import CacheGeometry, gather_bits, gather_bits_vec
from ..fastsim import direct_mapped_miss_count
from .base import TrainableIndexingScheme, register_scheme
from .bit_select import candidate_bit_positions

__all__ = ["PatelIndexing", "exhaustive_best_positions"]


def _cost(blocks: np.ndarray, positions: tuple[int, ...]) -> int:
    """Trace miss count when indexing by ``positions`` over block addresses."""
    indices = gather_bits_vec(blocks, positions)
    return direct_mapped_miss_count(blocks, indices)


def exhaustive_best_positions(
    blocks: np.ndarray, candidates: tuple[int, ...], count: int
) -> tuple[tuple[int, ...], int]:
    """True optimum by enumeration — exponential; for tests and tiny pools."""
    best: tuple[int, ...] | None = None
    best_cost = None
    for combo in itertools.combinations(candidates, count):
        c = _cost(blocks, combo)
        if best_cost is None or c < best_cost:
            best, best_cost = combo, c
    assert best is not None and best_cost is not None
    return best, best_cost


@register_scheme
class PatelIndexing(TrainableIndexingScheme):
    """Budgeted conflict-cost-minimising bit selection."""

    name = "patel"

    def __init__(
        self,
        geometry: CacheGeometry,
        max_swap_moves: int = 64,
        include_offset_bits: bool = False,
    ):
        super().__init__(geometry)
        self.max_swap_moves = max_swap_moves
        self.include_offset_bits = include_offset_bits
        self.positions: tuple[int, ...] = ()
        self.cost_: int | None = None
        self._candidates = candidate_bit_positions(geometry, include_offset_bits)
        self._shift = 0 if include_offset_bits else geometry.offset_bits

    # -- training ----------------------------------------------------------------

    def fit(self, addresses: np.ndarray) -> "PatelIndexing":
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        if addresses.size == 0:
            raise ValueError("empty profiling trace")
        blocks = addresses >> np.uint64(self.geometry.offset_bits)
        m = self.geometry.index_bits
        # Work in block-address bit coordinates to keep gather cheap, then
        # translate back to byte-address positions at the end.
        block_candidates = tuple(p - self.geometry.offset_bits for p in self._candidates
                                 if p >= self.geometry.offset_bits)
        selected = self._greedy(blocks, block_candidates, m)
        selected, cost = self._local_search(blocks, block_candidates, selected)
        self.positions = tuple(p + self.geometry.offset_bits for p in selected)
        self.cost_ = cost
        self._fitted = True
        return self

    def _greedy(
        self, blocks: np.ndarray, candidates: tuple[int, ...], count: int
    ) -> list[int]:
        selected: list[int] = []
        remaining = list(candidates)
        for _ in range(count):
            best_bit, best_cost = None, None
            for bit in remaining:
                c = _cost(blocks, tuple(selected + [bit]))
                if best_cost is None or c < best_cost:
                    best_bit, best_cost = bit, c
            assert best_bit is not None
            selected.append(best_bit)
            remaining.remove(best_bit)
        return selected

    def _local_search(
        self, blocks: np.ndarray, candidates: tuple[int, ...], selected: list[int]
    ) -> tuple[list[int], int]:
        current = list(selected)
        cost = _cost(blocks, tuple(current))
        moves = 0
        improved = True
        while improved and moves < self.max_swap_moves:
            improved = False
            outside = [b for b in candidates if b not in current]
            for i, inner in enumerate(current):
                for outer in outside:
                    trial = list(current)
                    trial[i] = outer
                    c = _cost(blocks, tuple(trial))
                    moves += 1
                    if c < cost:
                        current, cost = trial, c
                        improved = True
                        break
                    if moves >= self.max_swap_moves:
                        break
                if improved or moves >= self.max_swap_moves:
                    break
        return current, cost

    # -- mapping ----------------------------------------------------------------

    def index_of(self, address: int) -> int:
        self._require_fitted()
        return gather_bits(address, self.positions)

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return gather_bits_vec(np.asarray(addresses, dtype=np.uint64), self.positions).astype(np.int64)
