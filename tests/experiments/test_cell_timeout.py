"""Per-cell timeout tests (``cell_timeout`` / ``--cell-timeout``).

The engine bounds how long any single cell may run:

* pool path — ``future.result(timeout=...)``: a hung worker fails the run
  *with attribution* (a :class:`CellExecutionError` naming the cell)
  instead of blocking forever, and the remaining futures are cancelled;
* ``jobs=1`` in-process path — cannot preempt, so the budget is enforced
  post-hoc: the run still fails naming the offending cell as soon as it
  returns;
* no timeout (default) and generous timeouts change nothing.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

import repro.experiments.engine.parallel as parallel_mod
from repro.experiments import PaperConfig
from repro.experiments.engine import (
    CellExecutionError,
    ExperimentEngine,
    make_cell,
    run_cells,
)
from repro.experiments.engine.parallel import engine_pool_scope

REFS = 1500


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=REFS,
        workload_scale=0.05,
        jobs=1,
        trace_cache_dir=tmp_path / "traces",
    )


def _slow_execute(duration: float, release: threading.Event | None = None):
    """A stand-in for ``timed_execute_cell`` that dawdles predictably."""
    from repro.experiments.engine.cells import timed_execute_cell

    def slow(cell, cfg, trace_path=None, profile_path=None):
        if release is not None:
            release.wait(30)
        else:
            time.sleep(duration)
        result, _ = timed_execute_cell(cell, cfg, trace_path, profile_path)
        return result, max(duration, 0.001)

    return slow


class TestSequentialPath:
    def test_post_hoc_enforcement_names_the_cell(self, config, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "timed_execute_cell", _slow_execute(0.05)
        )
        cell = make_cell("indexing", "fft", "XOR", config)
        with pytest.raises(CellExecutionError) as exc_info:
            run_cells([cell], config, jobs=1, cell_timeout=0.001)
        message = str(exc_info.value)
        assert "(fft, XOR)" in message and "per-cell timeout" in message

    def test_generous_timeout_passes(self, config):
        cell = make_cell("indexing", "fft", "XOR", config)
        results, stats = run_cells([cell], config, jobs=1, cell_timeout=300.0)
        assert ("fft", "XOR") in results
        assert stats.cache_misses == 1

    def test_timed_out_cell_is_not_cached(self, config, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "timed_execute_cell", _slow_execute(0.05)
        )
        cell = make_cell("indexing", "fft", "XOR", config)
        with pytest.raises(CellExecutionError):
            run_cells([cell], config, jobs=1, cell_timeout=0.001)
        # A fresh run without the budget must actually simulate (no stale
        # cache entry was written for the failed cell).
        monkeypatch.undo()
        _, stats = run_cells([cell], config, jobs=1)
        assert stats.cache_misses == 1


class TestPoolPath:
    """Thread pool via ``engine_pool_scope``: preemptive ``future.result``."""

    def test_hung_worker_fails_with_attribution(self, config, monkeypatch):
        release = threading.Event()
        monkeypatch.setattr(
            parallel_mod, "timed_execute_cell", _slow_execute(0.0, release)
        )
        cells = [make_cell("indexing", "fft", "XOR", config)]
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            t0 = time.perf_counter()
            with engine_pool_scope(pool):
                with pytest.raises(CellExecutionError) as exc_info:
                    run_cells(cells, config, jobs=4, cell_timeout=0.1)
            waited = time.perf_counter() - t0
            message = str(exc_info.value)
            assert "(fft, XOR)" in message
            assert "per-cell timeout (0.1s)" in message
            assert waited < 20  # attribution, not an indefinite block
        finally:
            release.set()
            pool.shutdown(wait=True)

    def test_fast_cells_pass_under_budget(self, config):
        cells = [
            make_cell("indexing", "fft", "XOR", config),
            make_cell("indexing", "fft", "Prime_Modulo", config),
        ]
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            with engine_pool_scope(pool):
                results, stats = run_cells(cells, config, jobs=4, cell_timeout=300.0)
        finally:
            pool.shutdown(wait=True)
        assert len(results) == 2
        assert stats.cache_misses == 2


class TestConfigPlumbing:
    def test_config_field_is_the_default_budget(self, config, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "timed_execute_cell", _slow_execute(0.05)
        )
        strict = replace(config, cell_timeout=0.001)
        cell = make_cell("indexing", "fft", "XOR", strict)
        with pytest.raises(CellExecutionError, match="per-cell timeout"):
            run_cells([cell], strict, jobs=1)

    def test_explicit_argument_overrides_config(self, config, monkeypatch):
        monkeypatch.setattr(
            parallel_mod, "timed_execute_cell", _slow_execute(0.05)
        )
        strict = replace(config, cell_timeout=0.001)
        cell = make_cell("indexing", "fft", "XOR", strict)
        # A generous explicit budget wins over the config's strict one.
        results, _ = run_cells([cell], strict, jobs=1, cell_timeout=300.0)
        assert ("fft", "XOR") in results

    def test_engine_wrapper_inherits_config_budget(self, config):
        engine = ExperimentEngine(replace(config, cell_timeout=123.0))
        assert engine.cell_timeout == 123.0
        engine = ExperimentEngine(config, cell_timeout=7.0)
        assert engine.cell_timeout == 7.0

    def test_cell_timeout_not_in_cache_keys(self, config):
        """An execution knob must not shift content-addressed keys."""
        from repro.experiments.engine import plan_cells

        cell_a = make_cell("indexing", "fft", "XOR", config)
        strict = replace(config, cell_timeout=5.0)
        cell_b = make_cell("indexing", "fft", "XOR", strict)
        key_a = plan_cells([cell_a], config, jobs=1).keys[cell_a]
        key_b = plan_cells([cell_b], strict, jobs=1).keys[cell_b]
        assert key_a == key_b
