"""Trace-level descriptive statistics.

Summaries used in workload documentation and sanity tests: footprint,
stride spectrum, reuse distances, segment mix.  These characterise the
*inputs* of the paper's experiments; the per-set uniformity metrics of the
*outputs* live in :mod:`repro.core.uniformity`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .event import Trace

__all__ = ["TraceSummary", "summarize", "stride_histogram", "reuse_distances"]


@dataclass(frozen=True)
class TraceSummary:
    name: str
    length: int
    unique_blocks: int
    footprint_bytes: int
    write_fraction: float
    num_threads: int
    top_strides: tuple[tuple[int, float], ...]

    def __str__(self) -> str:
        strides = ", ".join(f"{s:+d}×{f:.0%}" for s, f in self.top_strides)
        return (
            f"{self.name}: {self.length} refs, {self.unique_blocks} blocks "
            f"({self.footprint_bytes / 1024:.1f} KiB), {self.write_fraction:.0%} writes, "
            f"{self.num_threads} thread(s), strides [{strides}]"
        )


def summarize(trace: Trace, offset_bits: int = 5, top_k: int = 4) -> TraceSummary:
    hist = stride_histogram(trace, top_k=top_k)
    return TraceSummary(
        name=trace.name,
        length=len(trace),
        unique_blocks=int(trace.unique_blocks(offset_bits).size),
        footprint_bytes=trace.footprint_bytes(offset_bits),
        write_fraction=trace.write_fraction(),
        num_threads=trace.num_threads,
        top_strides=hist,
    )


def stride_histogram(trace: Trace, top_k: int = 4) -> tuple[tuple[int, float], ...]:
    """Most common successive-address deltas and their frequencies."""
    if len(trace) < 2:
        return ()
    deltas = np.diff(trace.addresses.astype(np.int64))
    counts = Counter(deltas.tolist())
    total = deltas.size
    return tuple((int(s), c / total) for s, c in counts.most_common(top_k))


def reuse_distances(trace: Trace, offset_bits: int = 5, limit: int | None = None) -> np.ndarray:
    """LRU stack distance per access (-1 for cold).  O(N · unique) worst case
    via a compact ordered structure; pass ``limit`` to cap the scan."""
    blocks = trace.blocks(offset_bits)
    if limit is not None:
        blocks = blocks[:limit]
    last_pos: dict[int, int] = {}
    # Distance = number of distinct blocks touched since the previous access
    # to this block; computed with a Fenwick tree over positions.
    n = blocks.size
    tree = np.zeros(n + 1, dtype=np.int64)

    def add(i: int, v: int) -> None:
        i += 1
        while i <= n:
            tree[i] += v
            i += i & (-i)

    def prefix(i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)

    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        b = int(blocks[i])
        if b in last_pos:
            j = last_pos[b]
            out[i] = prefix(i - 1) - prefix(j)
            add(j, -1)
        else:
            out[i] = -1
        add(i, 1)
        last_pos[b] = i
    return out
