"""Cache-conscious procedure placement (after Liang & Mitra, the paper's
reference [16]).

The paper summarises the algorithm: "the algorithm iterates through all the
hot procedures and selects the displacement value that yields the highest
benefit".  This module implements that greedy scheme against our cache
model directly:

* procedures are processed hottest-first (the :class:`CallProfile` order);
* each procedure tries every candidate displacement (cache-line granular
  start offsets within one cache-capacity window appended after the already
  placed code);
* the benefit of a displacement is the reduction in *weighted set overlap*
  with already-placed procedures, where the weight of a pair is their
  temporal adjacency count — temporally interleaved procedures sharing sets
  are exactly the conflict misses;
* the chosen displacement is committed and the next procedure is placed.

``optimize_placement`` mutates a copy of the layout and returns it along
with the before/after overlap costs; the ``ext-icache`` experiment measures
the actual I-cache miss reduction it buys.
"""

from __future__ import annotations

import numpy as np

from ..core.address import CacheGeometry
from .code import CallProfile, CodeLayout

__all__ = ["weighted_overlap_cost", "optimize_placement"]


def _set_vector(layout: CodeLayout, name: str, geometry: CacheGeometry) -> np.ndarray:
    """Which cache sets the procedure's body occupies (multiplicity kept)."""
    blocks = layout.blocks_of(name, geometry.line_bytes)
    return blocks % geometry.num_sets


def weighted_overlap_cost(
    layout: CodeLayout, profile: CallProfile, geometry: CacheGeometry
) -> float:
    """Σ over procedure pairs of adjacency-weight × shared-set count."""
    names = list(layout.procedures)
    sets = {n: set(_set_vector(layout, n, geometry).tolist()) for n in names}
    cost = 0.0
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            w = profile.weight(a, b)
            if w:
                cost += w * len(sets[a] & sets[b])
    return cost


def optimize_placement(
    layout: CodeLayout,
    profile: CallProfile,
    geometry: CacheGeometry,
    candidates_per_proc: int = 64,
) -> tuple[CodeLayout, float, float]:
    """Greedy hottest-first re-placement.

    Returns ``(new_layout, cost_before, cost_after)``.  The new layout packs
    procedures in heat order, each at the candidate offset (line-granular,
    within one cache capacity of the pack cursor) minimising its weighted
    overlap with everything already placed — inserting gaps (displacement)
    exactly where they pay, as [16] describes.
    """
    cost_before = weighted_overlap_cost(layout, profile, geometry)
    procs = [layout.procedures[n] for n in profile.hot_order() if n in layout.procedures]
    # Cold procedures (never called) keep relative order at the end.
    procs += [p for n, p in layout.procedures.items() if n not in profile.calls]

    new = CodeLayout(list(layout.procedures.values()), base=layout.base, align=layout.align)
    placed: list[str] = []
    placed_sets: dict[str, set[int]] = {}
    cursor = layout.base
    line = geometry.line_bytes
    for proc in procs:
        best_start, best_cost = cursor, None
        step = max(line, (geometry.capacity_bytes // candidates_per_proc) // line * line)
        for k in range(candidates_per_proc):
            start = cursor + k * step
            first = start // line
            last = (start + proc.size_bytes - 1) // line
            sets = set((np.arange(first, last + 1) % geometry.num_sets).tolist())
            cost = sum(
                profile.weight(proc.name, other) * len(sets & placed_sets[other])
                for other in placed
            )
            if best_cost is None or cost < best_cost:
                best_start, best_cost = start, cost
            if cost == 0:
                break
        new.place_at(proc.name, best_start)
        placed.append(proc.name)
        placed_sets[proc.name] = set(
            _set_vector(new, proc.name, geometry).tolist()
        )
        cursor = max(cursor, new.end_of(proc.name))
    cost_after = weighted_overlap_cost(new, profile, geometry)
    return new, cost_before, cost_after
