"""Instruction-fetch trace generation from a call sequence.

Given a :class:`~repro.icache.code.CodeLayout` and a dynamic call sequence,
produce the L1I reference stream: each invocation fetches its procedure's
body sequentially (one reference per instruction-cache line), covering
``body_coverage`` of the body, optionally repeating the covered prefix
``loop_iterations`` times (hot inner loops re-fetch the same lines — which
is precisely why resident hot procedures matter).

The result is an ordinary :class:`~repro.trace.event.Trace`, so the entire
data-side machinery (indexing schemes, cache models, uniformity metrics)
applies to instruction caches unchanged.
"""

from __future__ import annotations

import numpy as np

from ..trace.event import Trace
from .code import CodeLayout

__all__ = ["generate_itrace", "synthetic_call_sequence"]


def generate_itrace(
    layout: CodeLayout,
    call_sequence: list[str],
    line_bytes: int = 32,
    loop_iterations: int = 1,
    name: str = "itrace",
) -> Trace:
    """I-fetch trace for ``call_sequence`` under ``layout``."""
    if loop_iterations < 1:
        raise ValueError("loop_iterations must be >= 1")
    chunks: list[np.ndarray] = []
    for proc_name in call_sequence:
        proc = layout.procedures[proc_name]
        start = layout.start_of(proc_name)
        covered = max(1, int(proc.size_bytes * proc.body_coverage))
        lines = np.arange(start, start + covered, line_bytes, dtype=np.uint64)
        if loop_iterations > 1:
            lines = np.tile(lines, loop_iterations)
        chunks.append(lines)
    addresses = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint64)
    return Trace(addresses, name=name, meta={"calls": len(call_sequence)})


def synthetic_call_sequence(
    procedures: list[str],
    length: int,
    seed: int = 0,
    zipf_exponent: float = 1.3,
    phase_length: int = 64,
) -> list[str]:
    """A realistic call sequence: Zipf-popular procedures with phase locality.

    Within a phase only a random subset of procedures is active (programs
    alternate between clusters of routines); popularity across phases is
    Zipf — a few hot procedures dominate, as every profile-driven paper
    assumes.
    """
    rng = np.random.default_rng(seed)
    n = len(procedures)
    ranks = np.arange(1, n + 1, dtype=np.float64) ** -zipf_exponent
    popularity = ranks / ranks.sum()
    order = rng.permutation(n)
    sequence: list[str] = []
    while len(sequence) < length:
        active = rng.choice(n, size=max(2, n // 3), replace=False, p=popularity)
        weights = popularity[active] / popularity[active].sum()
        for _ in range(min(phase_length, length - len(sequence))):
            pick = int(rng.choice(active, p=weights))
            sequence.append(procedures[order[pick] % n])
    return sequence
