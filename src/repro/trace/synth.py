"""Synthetic trace stressors.

Parametric generators with *known* ground-truth behaviour, used by the test
suite to validate the simulator and metrics (a Zipf trace must show high
kurtosis; a uniform sweep must show ~zero; a power-of-two stride must
thrash a direct-mapped cache but not a prime-modulo one) and by the
ablation benches as controlled inputs.
"""

from __future__ import annotations

import numpy as np

from .event import Trace

__all__ = [
    "uniform_trace",
    "sequential_sweep",
    "strided_trace",
    "zipf_trace",
    "hot_set_trace",
    "pointer_chase_trace",
    "ping_pong_trace",
]


def uniform_trace(
    length: int, span_bytes: int = 1 << 20, base: int = 0x1000_0000, seed: int = 0, name: str = "uniform"
) -> Trace:
    """Independent uniform addresses over ``span_bytes`` — maximally uniform sets."""
    rng = np.random.default_rng(seed)
    addrs = base + rng.integers(0, span_bytes, size=length, dtype=np.int64)
    return Trace(addrs.astype(np.uint64), name=name, meta={"seed": seed, "span": span_bytes})


def sequential_sweep(
    length: int, stride: int = 4, base: int = 0x1000_0000, name: str = "sweep"
) -> Trace:
    """A linear scan: ``base, base+stride, ...`` — classic streaming access."""
    addrs = base + stride * np.arange(length, dtype=np.uint64)
    return Trace(addrs, name=name, meta={"stride": stride})


def strided_trace(
    length: int,
    stride: int,
    working_set: int,
    base: int = 0x1000_0000,
    name: str = "strided",
) -> Trace:
    """Repeated strided sweeps over a fixed working set.

    With ``stride`` a multiple of ``line_size * num_sets`` every reference
    lands in one set of a conventionally indexed cache — the paper's
    motivating pathology.
    """
    per_sweep = max(1, working_set // max(stride, 1))
    offsets = (np.arange(length, dtype=np.uint64) % np.uint64(per_sweep)) * np.uint64(stride)
    return Trace(np.uint64(base) + offsets, name=name, meta={"stride": stride})


def zipf_trace(
    length: int,
    num_blocks: int = 4096,
    exponent: float = 1.2,
    line_size: int = 32,
    base: int = 0x1000_0000,
    seed: int = 0,
    name: str = "zipf",
) -> Trace:
    """Zipf-popular blocks: few extremely hot lines, a long cold tail."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_blocks + 1, dtype=np.float64)
    probs = ranks**-exponent
    probs /= probs.sum()
    # Shuffle block placement so hotness is not correlated with address.
    placement = rng.permutation(num_blocks).astype(np.uint64)
    picks = rng.choice(num_blocks, size=length, p=probs)
    addrs = np.uint64(base) + placement[picks] * np.uint64(line_size)
    return Trace(addrs, name=name, meta={"seed": seed, "exponent": exponent})


def hot_set_trace(
    length: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
    span_bytes: int = 1 << 20,
    base: int = 0x1000_0000,
    seed: int = 0,
    name: str = "hot_set",
) -> Trace:
    """A two-tier distribution: ``hot_weight`` of accesses hit the first
    ``hot_fraction`` of the span."""
    if not 0 < hot_fraction < 1:
        raise ValueError("hot_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    hot_span = max(1, int(span_bytes * hot_fraction))
    is_hot = rng.random(length) < hot_weight
    addrs = np.where(
        is_hot,
        rng.integers(0, hot_span, size=length),
        rng.integers(hot_span, span_bytes, size=length),
    )
    return Trace((base + addrs).astype(np.uint64), name=name, meta={"seed": seed})


def pointer_chase_trace(
    length: int,
    num_nodes: int = 4096,
    node_size: int = 64,
    base: int = 0x0900_0000,
    seed: int = 0,
    name: str = "chase",
) -> Trace:
    """A random circular linked list walked repeatedly — dependent loads."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_nodes)
    next_node = np.empty(num_nodes, dtype=np.int64)
    next_node[perm] = np.roll(perm, -1)
    node = int(perm[0])
    out = np.empty(length, dtype=np.uint64)
    for i in range(length):
        out[i] = base + node * node_size
        node = int(next_node[node])
    return Trace(out, name=name, meta={"seed": seed, "nodes": num_nodes})


def ping_pong_trace(
    length: int,
    distance: int = 32 * 1024,
    base: int = 0x1000_0000,
    name: str = "ping_pong",
) -> Trace:
    """Two addresses exactly ``distance`` apart, alternating.

    With ``distance`` equal to the cache capacity the pair conflicts in
    every conventional direct-mapped set — a 100%-miss adversary that any
    of the paper's techniques should fix.
    """
    addrs = np.where(
        np.arange(length, dtype=np.uint64) % np.uint64(2) == 0,
        np.uint64(base),
        np.uint64(base + distance),
    )
    return Trace(addrs, name=name, meta={"distance": distance})
