"""SPEC-like ``milc`` — 4-D lattice QCD staggered-fermion sweeps.

Mechanistic stand-in for 433.milc: an L⁴ lattice of SU(3) matrices (72-byte
complex 3×3 per link direction) swept site-by-site with ±μ̂ neighbour
gathers.  The power-of-two lattice strides in each dimension alias heavily
under conventional indexing — exactly the pathology prime-modulo indexing
targets — making milc one of the workloads that *benefits* in the paper's
Figure 8.

SU(3) unitarity of the generated links is asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["MilcWorkload", "random_su3"]

_SU3 = 144  # 3x3 complex128
_VEC = 48  # 3 complex128


def random_su3(rng: np.random.Generator) -> np.ndarray:
    """A Haar-ish random SU(3) matrix via QR of a complex Gaussian."""
    z = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
    q, r = np.linalg.qr(z)
    q = q * (np.diagonal(r) / np.abs(np.diagonal(r)))
    return q / np.linalg.det(q) ** (1 / 3)


@register_workload
class MilcWorkload(Workload):
    name = "milc"
    suite = "spec"
    description = "Staggered-fermion hopping term over a 4-D lattice"
    access_pattern = "4-D stencil with power-of-two dimension strides"

    def kernel(self, m: Recorder, scale: float) -> None:
        side = max(4, 2 * self.scaled(4, scale, minimum=2) // 2 * 2)  # even, >=4
        vol = side**4
        sweeps = self.scaled(3, scale, minimum=1)
        links_arr = m.space.mmap_array(_SU3, vol * 4, "gauge_links")
        src_arr = m.space.mmap_array(_VEC, vol, "src_vector")
        dst_arr = m.space.mmap_array(_VEC, vol, "dst_vector")

        strides = (1, side, side * side, side**3)
        src = m.rng.normal(size=(vol, 3)) + 1j * m.rng.normal(size=(vol, 3))
        links = [random_su3(m.rng) for _ in range(16)]  # shared pool (real MILC reuses)
        dst = np.zeros_like(src)
        for sweep in range(sweeps):
            for site in range(vol):
                m.load_elem(src_arr, site)
                acc = np.zeros(3, dtype=complex)
                coords = [(site // strides[mu]) % side for mu in range(4)]
                for mu in range(4):
                    fwd = site + strides[mu] if coords[mu] != side - 1 else site - (side - 1) * strides[mu]
                    bwd = site - strides[mu] if coords[mu] != 0 else site + (side - 1) * strides[mu]
                    m.load_elem(links_arr, site * 4 + mu)
                    m.load_elem(src_arr, fwd)
                    u = links[(site * 4 + mu) % len(links)]
                    acc += u @ src[fwd]
                    m.load_elem(links_arr, bwd * 4 + mu)
                    m.load_elem(src_arr, bwd)
                    ub = links[(bwd * 4 + mu) % len(links)]
                    acc -= ub.conj().T @ src[bwd]
                dst[site] = acc
                m.store_elem(dst_arr, site)
            src, dst = dst, src
        m.builder.meta["norm"] = float(np.linalg.norm(src))
        m.builder.meta["side"] = side
