"""Uniformity metrics over per-set distributions (paper Sections IV.C/D).

The paper quantifies access non-uniformity three ways, all reproduced here:

* the *prose* statistics of Figure 1 ("90.43% of sets get less than half the
  average accesses, 6.641% get twice the average") —
  :func:`half_double_buckets`;
* Zhang's categorical split into Frequently-Hit / Frequently-Missed /
  Least-Accessed sets — :func:`zhang_classification`;
* distribution-shape moments — *skewness* (third standardised moment) and
  *kurtosis* (fourth) of the per-set count distribution —
  :func:`distribution_moments`.  Following the paper's reading ("a uniform
  distribution would be the extreme case with zero kurtosis"), kurtosis is
  reported in *excess* form and clamped nonnegative-at-uniformity is **not**
  applied: a perfectly flat distribution reports its true excess kurtosis.
  Both moments are population (biased) moments, cross-checked against
  ``scipy.stats`` in the test-suite.

Figures 9-12 plot *percentage increase* of these moments versus the
conventional baseline; :func:`percent_increase` implements that with an
epsilon guard because the paper's own charts show the blow-ups a near-zero
baseline causes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "distribution_moments",
    "skewness",
    "kurtosis",
    "percent_increase",
    "percent_reduction",
    "zhang_classification",
    "half_double_buckets",
    "gini_coefficient",
    "normalized_entropy",
    "UniformityReport",
    "uniformity_report",
    "AuxStructureReport",
    "aux_structure_report",
    "eviction_absorption",
    "eviction_absorption_gini",
]


def distribution_moments(counts: np.ndarray) -> tuple[float, float, float, float]:
    """(mean, std, skewness, excess kurtosis) of a count vector."""
    x = np.asarray(counts, dtype=np.float64)
    if x.size == 0:
        raise ValueError("empty distribution")
    mean = float(x.mean())
    dev = x - mean
    m2 = float(np.mean(dev**2))
    if m2 == 0.0:
        # Degenerate (all-equal) distribution: zero spread, define shape as 0.
        return mean, 0.0, 0.0, 0.0
    m3 = float(np.mean(dev**3))
    m4 = float(np.mean(dev**4))
    return mean, m2**0.5, m3 / m2**1.5, m4 / m2**2 - 3.0


def skewness(counts: np.ndarray) -> float:
    return distribution_moments(counts)[2]


def kurtosis(counts: np.ndarray) -> float:
    """Excess kurtosis (normal = 0; flat/uniform ≈ -1.2; spiky ≫ 0)."""
    return distribution_moments(counts)[3]


def percent_increase(value: float, baseline: float, eps: float = 1e-12) -> float:
    """100 · (value - baseline) / |baseline|, guarded against ~0 baselines.

    Figures 9-12 plot this for moments; the guard returns ±inf-capped large
    values the same way the paper's near-zero baselines produced extreme
    bars (e.g. -5e8% in its Figure 4).
    """
    if abs(baseline) < eps:
        if abs(value) < eps:
            return 0.0
        return float(np.sign(value - baseline)) * 1e9
    return 100.0 * (value - baseline) / abs(baseline)


def percent_reduction(value: float, baseline: float, eps: float = 1e-12) -> float:
    """100 · (baseline - value) / baseline — the paper's miss-rate metric.

    Positive = improvement.  A zero baseline with a nonzero value mirrors
    the paper's huge negative bars.
    """
    if abs(baseline) < eps:
        if abs(value) < eps:
            return 0.0
        return -1e9
    return 100.0 * (baseline - value) / baseline


def zhang_classification(
    accesses: np.ndarray, hits: np.ndarray, misses: np.ndarray
) -> dict[str, float]:
    """Zhang's FHS/FMS/LAS percentages (paper Section IV.C).

    FHS: sets with ≥ 2× the average hits; FMS: ≥ 2× the average misses;
    LAS: < half the average accesses.  Returned as percentages of all sets.
    """
    accesses = np.asarray(accesses, dtype=np.float64)
    hits = np.asarray(hits, dtype=np.float64)
    misses = np.asarray(misses, dtype=np.float64)
    n = accesses.size
    if n == 0:
        raise ValueError("empty per-set arrays")
    fhs = float((hits >= 2.0 * hits.mean()).sum()) if hits.mean() > 0 else 0.0
    fms = float((misses >= 2.0 * misses.mean()).sum()) if misses.mean() > 0 else 0.0
    las = float((accesses < 0.5 * accesses.mean()).sum())
    return {"FHS%": 100.0 * fhs / n, "FMS%": 100.0 * fms / n, "LAS%": 100.0 * las / n}


def half_double_buckets(counts: np.ndarray) -> tuple[float, float]:
    """(%, %) of sets below half and at/above double the average count —
    the Figure-1 prose statistics."""
    x = np.asarray(counts, dtype=np.float64)
    avg = x.mean()
    if avg == 0:
        return 100.0, 0.0
    below = 100.0 * float((x < 0.5 * avg).sum()) / x.size
    above = 100.0 * float((x >= 2.0 * avg).sum()) / x.size
    return below, above


def gini_coefficient(counts: np.ndarray) -> float:
    """0 = perfectly uniform, →1 = all accesses on one set."""
    x = np.sort(np.asarray(counts, dtype=np.float64))
    n = x.size
    total = x.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(x)
    # Standard discrete Gini over a sorted sample.
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def normalized_entropy(counts: np.ndarray) -> float:
    """Shannon entropy of the count distribution over log(n): 1 = uniform."""
    x = np.asarray(counts, dtype=np.float64)
    total = x.sum()
    if total == 0 or x.size < 2:
        return 1.0
    p = x / total
    nz = p[p > 0]
    h = float(-(nz * np.log(nz)).sum())
    return h / float(np.log(x.size))


@dataclass(frozen=True)
class UniformityReport:
    """All uniformity metrics for one per-set distribution."""

    mean: float
    std: float
    skewness: float
    kurtosis: float
    gini: float
    entropy: float
    below_half_pct: float
    above_double_pct: float

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "skewness": self.skewness,
            "kurtosis": self.kurtosis,
            "gini": self.gini,
            "entropy": self.entropy,
            "below_half_pct": self.below_half_pct,
            "above_double_pct": self.above_double_pct,
        }


def uniformity_report(counts: np.ndarray) -> UniformityReport:
    mean, std, skew, kurt = distribution_moments(counts)
    below, above = half_double_buckets(counts)
    return UniformityReport(
        mean=mean,
        std=std,
        skewness=skew,
        kurtosis=kurt,
        gini=gini_coefficient(counts),
        entropy=normalized_entropy(counts),
        below_half_pct=below,
        above_double_pct=above,
    )


# -- auxiliary-structure metrics (ext-aux) -----------------------------------------


@dataclass(frozen=True)
class AuxStructureReport:
    """Per-structure effectiveness of one augmented-cache simulation.

    Rates over *all* accesses (``victim_hit_rate`` etc.), plus the stream
    buffers' classic prefetch quality pair — *coverage* (fraction of
    would-be misses the streams serviced) and *accuracy* (fraction of
    issued prefetches that were ever delivered) — and the overall
    ``absorption_rate``: the fraction of main-array misses any structure
    absorbed.
    """

    victim_hit_rate: float
    miss_cache_hit_rate: float
    stream_hit_rate: float
    stream_coverage: float
    stream_accuracy: float
    absorption_rate: float

    def as_dict(self) -> dict[str, float]:
        return {
            "victim_hit_rate": self.victim_hit_rate,
            "miss_cache_hit_rate": self.miss_cache_hit_rate,
            "stream_hit_rate": self.stream_hit_rate,
            "stream_coverage": self.stream_coverage,
            "stream_accuracy": self.stream_accuracy,
            "absorption_rate": self.absorption_rate,
        }


def aux_structure_report(result) -> AuxStructureReport:
    """Per-structure metrics from a :class:`SimulationResult`'s counters.

    Works on any result whose ``extra`` carries the aux hit classes
    (``victim_hits`` / ``miss_cache_hits`` / ``stream_hits`` plus the
    stream buffers' ``stream_prefetches``); absent classes report 0.0.
    """
    accesses = result.accesses or 0
    vc = result.extra.get("victim_hits", 0)
    mc = result.extra.get("miss_cache_hits", 0)
    sb = result.extra.get("stream_hits", 0)
    prefetches = result.extra.get("stream_prefetches", 0)
    # Main-array misses = composed misses + everything the aux layer absorbed.
    main_misses = result.misses + vc + mc + sb
    return AuxStructureReport(
        victim_hit_rate=vc / accesses if accesses else 0.0,
        miss_cache_hit_rate=mc / accesses if accesses else 0.0,
        stream_hit_rate=sb / accesses if accesses else 0.0,
        stream_coverage=sb / (sb + result.misses) if (sb + result.misses) else 0.0,
        stream_accuracy=sb / prefetches if prefetches else 0.0,
        absorption_rate=(vc + mc + sb) / main_misses if main_misses else 0.0,
    )


def eviction_absorption(
    baseline_misses: np.ndarray, augmented_misses: np.ndarray
) -> np.ndarray:
    """Per-set count of misses the aux layer absorbed: the baseline's
    per-set misses minus the augmented run's, floored at zero (an aux
    structure can reorder *which* set pays a cold miss, never add misses
    under the same mapping)."""
    base = np.asarray(baseline_misses, dtype=np.int64)
    aug = np.asarray(augmented_misses, dtype=np.int64)
    if base.shape != aug.shape:
        raise ValueError("per-set miss arrays must have equal shape")
    return np.maximum(base - aug, 0)


def eviction_absorption_gini(
    baseline_misses: np.ndarray, augmented_misses: np.ndarray
) -> float:
    """Gini of the per-set absorption distribution: 0 = the structure
    relieves every set evenly, →1 = all absorbed misses came from a few
    hot sets (the victim-cache signature on skewed mappings)."""
    return gini_coefficient(eviction_absorption(baseline_misses, augmented_misses))
