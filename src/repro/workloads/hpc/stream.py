"""HPC ``stream`` — the STREAM triad (McCalpin).

``a[i] = b[i] + q * c[i]`` over three large vectors: the definitive
bandwidth benchmark and the definitive *uniform* access pattern.  With the
vectors allocated back-to-back it is immune to every technique in the
paper; with capacity-aligned allocation (``aligned=True`` metadata knob via
scale — we allocate aligned by default to model the classic power-of-2
array pitfall) the three streams collide in every set and conventional
indexing triples the miss rate.  The triad arithmetic is verified in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["StreamWorkload"]


@register_workload
class StreamWorkload(Workload):
    name = "stream"
    suite = "hpc"
    description = "STREAM triad a = b + q*c over capacity-aligned vectors"
    access_pattern = "three interleaved unit-stride streams, mutually aliasing"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(8192, scale, minimum=64)  # doubles per vector
        passes = self.scaled(4, scale, minimum=1)
        a_arr = m.space.heap_array(8, n, "a", align=32 * 1024)
        b_arr = m.space.heap_array(8, n, "b", align=32 * 1024)
        c_arr = m.space.heap_array(8, n, "c", align=32 * 1024)
        q = 3.0
        b = m.rng.normal(0, 1, size=n)
        c = m.rng.normal(0, 1, size=n)
        a = np.zeros(n)
        if m.bulk:
            # Bulk emission: the triad's R,R,W repeating unit over all three
            # vectors, one interleaved stream per pass — bit-identical to
            # the scalar loop below (same flattened event order, same cut).
            idx = np.arange(n)
            cols = (
                (b_arr.addrs(idx), False),
                (c_arr.addrs(idx), False),
                (a_arr.addrs(idx), True),
            )
            a[:] = b + q * c  # same per-element FP expression as the loop
            for _ in range(passes):
                m.interleaved_stream(*cols)
        else:
            for _ in range(passes):
                for i in range(n):
                    m.load_elem(b_arr, i)
                    m.load_elem(c_arr, i)
                    a[i] = b[i] + q * c[i]
                    m.store_elem(a_arr, i)
        m.builder.meta["checksum"] = float(a.sum())
        m.builder.meta["expected"] = float((b + q * c).sum())
