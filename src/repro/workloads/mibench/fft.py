"""MiBench ``fft`` — iterative radix-2 FFT over synthesised waveforms.

This is the paper's Figure-1 poster child for non-uniform access.  Two
properties of the real benchmark are reproduced deliberately:

* the ``real``/``imag`` float arrays are allocated at cache-capacity-aligned
  bases, so ``real[i]`` and ``imag[i]`` fall in the *same* conventionally
  indexed set with different tags — every butterfly ping-pongs a set between
  the two arrays (the classic FFT direct-mapped pathology; alternative
  indexes and programmable associativity both fix it, which is why fft shows
  large gains in the paper's Figures 4 and 6);
* the working set (arrays + twiddle tables) covers only a minority of the
  1024 sets, and the twiddle access pattern is geometrically concentrated on
  low table indexes (stage *s* touches ``2^(s-1)`` distinct entries), so a
  small set population takes most accesses while the majority sit below half
  the average — the paper's Figure-1 prose.

The kernel runs a genuine in-place FFT; numeric results are checked against
``numpy.fft`` in the tests.
"""

from __future__ import annotations

import math

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["FFTWorkload"]

_CACHE_ALIGN = 32 * 1024  # align arrays to the L1 capacity (see module docs)


@register_workload
class FFTWorkload(Workload):
    name = "fft"
    suite = "mibench"
    description = "Radix-2 in-place FFT of synthesised polysine waves"
    access_pattern = "aliasing real/imag butterflies + concentrated twiddles"

    def kernel(self, m: Recorder, scale: float) -> None:
        bits = max(4, round(11 * min(scale, 1.0)) if scale < 1.0 else 11)
        n = 1 << bits  # 2048 points at scale 1
        waves = self.scaled(2, scale, minimum=1)
        # 4-byte floats, capacity-aligned so real[i] and imag[i] share a set.
        real = m.space.heap_array(4, n, "real", align=_CACHE_ALIGN)
        imag = m.space.heap_array(4, n, "imag", align=_CACHE_ALIGN)
        cos_t = m.space.heap_array(4, n // 2, "cos_table", align=_CACHE_ALIGN)
        sin_t = m.space.heap_array(4, n // 2, "sin_table")
        cv = [math.cos(-2.0 * math.pi * k / n) for k in range(n // 2)]
        sv = [math.sin(-2.0 * math.pi * k / n) for k in range(n // 2)]

        frame = m.space.push_frame(96)
        i_slot = frame.local("i")
        for k in range(n // 2):
            m.store(i_slot)
            m.store_elem(cos_t, k)
            m.store_elem(sin_t, k)

        rv = [0.0] * n
        iv = [0.0] * n
        for wave in range(waves):
            # Wave synthesis: a handful of harmonics, as MiBench's input maker.
            freqs = [int(m.rng.integers(1, n // 4)) for _ in range(4)]
            amps = [float(m.rng.uniform(0.5, 2.0)) for _ in range(4)]
            for i in range(n):
                rv[i] = sum(a * math.sin(2.0 * math.pi * f * i / n) for f, a in zip(freqs, amps))
                iv[i] = 0.0
                m.store_elem(real, i)
                m.store_elem(imag, i)

            # Bit-reversal permutation.
            j = 0
            for i in range(1, n):
                bit = n >> 1
                while j & bit:
                    j ^= bit
                    bit >>= 1
                j |= bit
                if i < j:
                    m.load_elem(real, i)
                    m.load_elem(real, j)
                    m.store_elem(real, i)
                    m.store_elem(real, j)
                    rv[i], rv[j] = rv[j], rv[i]
                    m.load_elem(imag, i)
                    m.load_elem(imag, j)
                    m.store_elem(imag, i)
                    m.store_elem(imag, j)
                    iv[i], iv[j] = iv[j], iv[i]

            # Butterfly stages.
            length = 2
            while length <= n:
                half = length // 2
                step = n // length
                for start in range(0, n, length):
                    for k in range(half):
                        tw = k * step
                        m.load_elem(cos_t, tw)
                        m.load_elem(sin_t, tw)
                        a, b = start + k, start + k + half
                        m.load_elem(real, b)
                        m.load_elem(imag, b)
                        tr = rv[b] * cv[tw] - iv[b] * sv[tw]
                        ti = rv[b] * sv[tw] + iv[b] * cv[tw]
                        m.load_elem(real, a)
                        m.load_elem(imag, a)
                        rv[b] = rv[a] - tr
                        iv[b] = iv[a] - ti
                        rv[a] += tr
                        iv[a] += ti
                        m.store_elem(real, b)
                        m.store_elem(imag, b)
                        m.store_elem(real, a)
                        m.store_elem(imag, a)
                length <<= 1
        m.space.pop_frame()
        # Stash results for verification by tests (only reached when the
        # kernel completes within the reference limit).
        m.builder.meta["result_real"] = rv[: min(n, 16)]
        m.builder.meta["n"] = n
