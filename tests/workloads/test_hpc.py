"""HPC-suite kernel tests: algorithmic correctness + pathology structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.indexing import ModuloIndexing, PrimeModuloIndexing
from repro.core.simulator import simulate_indexing
from repro.workloads import available_workloads, get_workload
from repro.workloads.hpc import HPC_ORDER
from repro.workloads.hpc.spmv import random_csr

G = PAPER_L1_GEOMETRY


class TestRegistry:
    def test_all_registered(self):
        assert available_workloads("hpc") == sorted(HPC_ORDER)

    @pytest.mark.parametrize("name", HPC_ORDER)
    def test_deterministic(self, name):
        w = get_workload(name)
        a = w.generate(seed=9, ref_limit=3000, scale=0.1)
        b = w.generate(seed=9, ref_limit=3000, scale=0.1)
        np.testing.assert_array_equal(a.addresses, b.addresses)


class TestJacobi:
    def test_relaxation_converges(self):
        t = get_workload("jacobi").generate(seed=1, ref_limit=None, scale=0.3)
        residuals = t.meta["residuals"]
        assert residuals[-1] < residuals[0]

    def test_double_buffer_aliasing_pathology(self):
        """src[i,j]/dst[i,j] share a set: prime-modulo cuts the misses."""
        t = get_workload("jacobi").generate(seed=1, ref_limit=60_000)
        mod = simulate_indexing(ModuloIndexing(G), t, G)
        prm = simulate_indexing(PrimeModuloIndexing(G), t, G)
        assert prm.misses < mod.misses * 0.6


class TestStream:
    def test_triad_arithmetic(self):
        t = get_workload("stream").generate(seed=2, ref_limit=None, scale=0.05)
        assert t.meta["checksum"] == pytest.approx(t.meta["expected"])

    def test_three_way_aliasing_thrashes_modulo(self):
        t = get_workload("stream").generate(seed=2, ref_limit=40_000)
        mod = simulate_indexing(ModuloIndexing(G), t, G)
        assert mod.miss_rate > 0.95  # b, c, a all in one set per element
        prm = simulate_indexing(PrimeModuloIndexing(G), t, G)
        assert prm.miss_rate < 0.5


class TestTranspose:
    def test_result_is_transpose(self):
        t = get_workload("transpose").generate(seed=3, ref_limit=None, scale=0.3)
        assert t.meta["is_transpose"]

    def test_column_write_pathology(self):
        t = get_workload("transpose").generate(seed=3, ref_limit=60_000)
        mod = simulate_indexing(ModuloIndexing(G), t, G)
        prm = simulate_indexing(PrimeModuloIndexing(G), t, G)
        assert prm.misses < mod.misses * 0.6


class TestSpmv:
    def test_matches_scipy(self):
        import scipy.sparse

        rng = np.random.default_rng(4)
        rp, ci, va = random_csr(64, 6, rng)
        mat = scipy.sparse.csr_matrix((va, ci, rp), shape=(64, 64))
        x = rng.normal(size=64)
        y_ref = mat @ x
        # Manual CSR product (the kernel's inner loop).
        y = np.zeros(64)
        for i in range(64):
            for k in range(int(rp[i]), int(rp[i + 1])):
                y[i] += va[k] * x[int(ci[k])]
        np.testing.assert_allclose(y, y_ref, rtol=1e-12)

    def test_kernel_checksum_finite(self):
        t = get_workload("spmv").generate(seed=5, ref_limit=None, scale=0.05)
        assert np.isfinite(t.meta["checksum"])
        assert t.meta["nnz"] > 0


class TestHistogram:
    def test_counts_match_bincount(self):
        t = get_workload("histogram").generate(seed=6, ref_limit=None, scale=0.05)
        assert t.meta["matches_bincount"]

    def test_hot_bins_exist(self):
        t = get_workload("histogram").generate(seed=6, ref_limit=None, scale=0.05)
        assert t.meta["max_bin"] > 10  # zipf popularity
