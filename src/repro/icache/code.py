"""Code-layout model for instruction-cache studies.

The paper's introduction spends two paragraphs on Liang & Mitra's procedure
placement ([16]): conflict misses in instruction caches come from *hot
procedures whose code ranges alias*, and moving procedures (inserting
displacement) removes them.  To study that here we need the instruction
side of the house:

* a :class:`Procedure` — a named contiguous code range;
* a :class:`CodeLayout` — the link-time placement: procedure → start
  address, with sequential (natural) layout as the default and arbitrary
  re-placement supported;
* a :class:`CallProfile` — the dynamic side: how often each procedure runs
  and which procedures are *temporally adjacent* (caller/callee or
  ping-ponging phases), which is exactly the information Liang's
  intermediate-blocks profile summarises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Procedure", "CodeLayout", "CallProfile"]

#: Default text-segment base (mirrors the data-side SegmentLayout style).
TEXT_BASE = 0x0040_11C0


@dataclass(frozen=True)
class Procedure:
    """A procedure's static properties."""

    name: str
    size_bytes: int
    #: Fraction of the body executed per invocation (hot loops revisit a
    #: prefix; 1.0 = straight-line through the whole body).
    body_coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("procedure size must be positive")
        if not 0.0 < self.body_coverage <= 1.0:
            raise ValueError("body_coverage must be in (0, 1]")


class CodeLayout:
    """Placement of procedures in the text segment."""

    def __init__(self, procedures: list[Procedure], base: int = TEXT_BASE, align: int = 16):
        if not procedures:
            raise ValueError("need at least one procedure")
        names = [p.name for p in procedures]
        if len(set(names)) != len(names):
            raise ValueError("duplicate procedure names")
        self.procedures = {p.name: p for p in procedures}
        self.base = base
        self.align = align
        self._starts: dict[str, int] = {}
        self.place_sequentially()

    # -- placement -------------------------------------------------------------

    def place_sequentially(self, order: list[str] | None = None) -> None:
        """Natural link order: procedures back to back (the baseline)."""
        cursor = self.base
        for name in order or list(self.procedures):
            proc = self.procedures[name]
            cursor = -(-cursor // self.align) * self.align
            self._starts[name] = cursor
            cursor += proc.size_bytes

    def place_at(self, name: str, start: int) -> None:
        """Explicit placement (the optimiser's output)."""
        if name not in self.procedures:
            raise KeyError(name)
        self._starts[name] = -(-start // self.align) * self.align

    def start_of(self, name: str) -> int:
        return self._starts[name]

    def end_of(self, name: str) -> int:
        return self._starts[name] + self.procedures[name].size_bytes

    def total_span(self) -> int:
        return max(self.end_of(n) for n in self.procedures) - self.base

    def blocks_of(self, name: str, line_bytes: int) -> np.ndarray:
        """Block addresses the procedure's body occupies."""
        start = self.start_of(name)
        end = self.end_of(name)
        first = start // line_bytes
        last = (end - 1) // line_bytes
        return np.arange(first, last + 1, dtype=np.int64)

    def overlaps(self) -> list[tuple[str, str]]:
        """Physically overlapping procedure pairs (placement bugs)."""
        spans = sorted(
            (self.start_of(n), self.end_of(n), n) for n in self.procedures
        )
        bad = []
        for (s1, e1, n1), (s2, e2, n2) in zip(spans, spans[1:]):
            if s2 < e1:
                bad.append((n1, n2))
        return bad


@dataclass
class CallProfile:
    """Dynamic call behaviour: invocation counts and temporal adjacency."""

    #: procedure -> number of invocations.
    calls: dict[str, int] = field(default_factory=dict)
    #: (a, b) -> how often an invocation of a is followed closely by b.
    adjacency: dict[tuple[str, str], int] = field(default_factory=dict)

    def record_sequence(self, sequence: list[str], window: int = 1) -> "CallProfile":
        """Build the profile from an observed call sequence."""
        for name in sequence:
            self.calls[name] = self.calls.get(name, 0) + 1
        for i, a in enumerate(sequence):
            for j in range(i + 1, min(i + 1 + window, len(sequence))):
                b = sequence[j]
                if a == b:
                    continue
                key = (a, b) if a < b else (b, a)
                self.adjacency[key] = self.adjacency.get(key, 0) + 1
        return self

    def hot_order(self) -> list[str]:
        """Procedures by heat, hottest first (the optimiser's work order)."""
        return sorted(self.calls, key=self.calls.__getitem__, reverse=True)

    def weight(self, a: str, b: str) -> int:
        key = (a, b) if a < b else (b, a)
        return self.adjacency.get(key, 0)
