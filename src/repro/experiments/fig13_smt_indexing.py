"""Figure 13 — multiple indexing schemes in a multithreaded (SMT) system.

2- and 4-thread mixes share the paper's L1D.  Baseline: every thread uses
conventional modulo indexing.  Treatment: each thread uses odd-multiplier
indexing with a *different* multiplier (the paper's initial experiment).
Bars are % reduction in total shared-cache misses.  Paper shape: large
reductions on every mix, substantial average.
"""

from __future__ import annotations

from ..core.indexing import ModuloIndexing, OddMultiplierIndexing
from ..core.selector import ThreadSchemeTable
from ..core.uniformity import percent_reduction
from ..multithread import SMTSharedCache, simulate_smt
from ..trace.interleave import round_robin
from .config import MULTITHREAD_MIXES_FIG13, PaperConfig
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig13", "mix_label", "mixed_trace"]


def mix_label(mix: tuple[str, ...]) -> str:
    return "_".join(mix)


def mixed_trace(mix: tuple[str, ...], config: PaperConfig):
    """Round-robin interleaving of the mix's per-thread traces.

    Each thread's workload runs in its own address-space slice (the
    interleaver re-tags threads by list position; the per-thread offset
    comes from regenerating with ``thread=i``).  Specs and cache keys come
    from :func:`repro.experiments.warm.mix_specs`, the same plan the
    parallel prefetch warms — so a warmed cache is a guaranteed hit here.
    """
    from ..trace.io import TraceCache
    from .warm import mix_specs

    cache = TraceCache(config.trace_cache_dir)
    traces = [
        cache.get_or_create(spec.cache_key(), spec.generate).with_name(spec.name)
        for spec in mix_specs(mix, config)
    ]
    return round_robin(traces, name=mix_label(mix))


@register_experiment("fig13")
def run_fig13(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="fig13",
        title="% reduction in miss rate: per-thread odd-multiplier indexing (SMT)",
        columns=["reduction"],
    )
    for mix in MULTITHREAD_MIXES_FIG13:
        trace = mixed_trace(mix, config)
        n = len(mix)
        base_cache = SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)] * n))
        base = simulate_smt(base_cache, trace)
        schemes = [
            OddMultiplierIndexing(g, config.smt_multipliers[i % len(config.smt_multipliers)])
            for i in range(n)
        ]
        multi_cache = SMTSharedCache(g, ThreadSchemeTable(schemes))
        multi = simulate_smt(multi_cache, trace)
        result.add_row(
            mix_label(mix), {"reduction": percent_reduction(multi.misses, base.misses)}
        )
        result.arrays[f"{mix_label(mix)}/base_cross_evictions"] = base.cross_evictions
        result.arrays[f"{mix_label(mix)}/multi_cross_evictions"] = multi.cross_evictions
    result.add_average_row()
    result.note("paper shape: significant reductions on every mix")
    result.note("baseline = both threads conventional modulo indexing, shared L1D")
    return result


from .warm import mix_specs, provides_traces  # noqa: E402


@provides_traces("fig13")
def fig13_traces(config: PaperConfig):
    return [s for mix in MULTITHREAD_MIXES_FIG13 for s in mix_specs(mix, config)]
