"""MiBench ``sha`` — SHA-1 digest of a buffer.

Per 64-byte input block: 16 sequential word loads, an 80-entry message
schedule written then read on the stack (hot frame lines), and the 5-word
state in static data updated per block.  The digest is the real SHA-1
value (tested against :mod:`hashlib`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["ShaWorkload"]


def _rol(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & 0xFFFFFFFF


@register_workload
class ShaWorkload(Workload):
    name = "sha"
    suite = "mibench"
    description = "SHA-1 hashing of a pseudo-random buffer"
    access_pattern = "block streaming + hot 80-word stack schedule"

    def kernel(self, m: Recorder, scale: float) -> None:
        nbytes = self.scaled(48 * 1024, scale, minimum=64) & ~63  # whole blocks
        buf = m.space.heap_array(1, nbytes + 72, "input")
        state_arr = m.space.static_array(4, 5, "sha_state")
        raw = bytes(m.rng.integers(0, 256, size=nbytes, dtype=int).tolist())
        # Standard SHA-1 padding: 0x80, zeros, 64-bit big-endian bit length.
        pad_len = (55 - nbytes) % 64
        data = raw + b"\x80" + b"\x00" * pad_len + (8 * nbytes).to_bytes(8, "big")
        h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]

        frame = m.space.push_frame(80 * 4 + 64)
        w_arr = frame.local_array("W", 4, 80)
        if m.bulk:
            # Every block emits the same 442-event unit — the addresses are
            # data-independent (only the 16 input-word loads shift by 64
            # bytes per block) — so the whole trace is one tiled template.
            # The digest itself is the standard SHA-1 of ``raw``; the scalar
            # loop below computes exactly that (tested against hashlib).
            tmpl_addr: list[int] = []
            tmpl_write: list[bool] = []
            for t in range(16):
                tmpl_addr.append(buf.addr(4 * t)); tmpl_write.append(False)
                tmpl_addr.append(w_arr.addr(t)); tmpl_write.append(True)
            for t in range(16, 80):
                for off in (3, 8, 14, 16):
                    tmpl_addr.append(w_arr.addr(t - off)); tmpl_write.append(False)
                tmpl_addr.append(w_arr.addr(t)); tmpl_write.append(True)
            for i in range(5):
                tmpl_addr.append(state_arr.addr(i)); tmpl_write.append(False)
            for t in range(80):
                tmpl_addr.append(w_arr.addr(t)); tmpl_write.append(False)
            for i in range(5):
                tmpl_addr.append(state_arr.addr(i)); tmpl_write.append(True)
            tmpl = np.array(tmpl_addr, dtype=np.uint64)
            buf_slots = np.arange(0, 32, 2)  # the 16 input-word loads
            n_blocks = len(data) // 64
            tiled = np.tile(tmpl, n_blocks).reshape(n_blocks, tmpl.size)
            tiled[:, buf_slots] += (
                np.uint64(64) * np.arange(n_blocks, dtype=np.uint64)
            )[:, None]
            flags = np.tile(np.array(tmpl_write, dtype=bool), n_blocks)
            m.pattern_stream(tiled.ravel(), flags)
            digest = hashlib.sha1(raw).hexdigest()
            m.space.pop_frame()
            m.builder.meta["digest"] = digest
            m.builder.meta["nbytes"] = nbytes
            return
        for block_start in range(0, len(data), 64):
            w = []
            for t in range(16):
                # Word load = 4 byte reads in the original; emit the word.
                m.load(buf.addr(block_start + 4 * t))
                word = int.from_bytes(data[block_start + 4 * t : block_start + 4 * t + 4], "big")
                w.append(word)
                m.store_elem(w_arr, t)
            for t in range(16, 80):
                m.load_elem(w_arr, t - 3)
                m.load_elem(w_arr, t - 8)
                m.load_elem(w_arr, t - 14)
                m.load_elem(w_arr, t - 16)
                w.append(_rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
                m.store_elem(w_arr, t)
            for i in range(5):
                m.load_elem(state_arr, i)
            a, b, c, d, e = h
            for t in range(80):
                if t < 20:
                    f, k = (b & c) | (~b & d), 0x5A827999
                elif t < 40:
                    f, k = b ^ c ^ d, 0x6ED9EBA1
                elif t < 60:
                    f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
                else:
                    f, k = b ^ c ^ d, 0xCA62C1D6
                m.load_elem(w_arr, t)
                tmp = (_rol(a, 5) + f + e + k + w[t]) & 0xFFFFFFFF
                e, d, c, b, a = d, c, _rol(b, 30), a, tmp
            h = [(x + y) & 0xFFFFFFFF for x, y in zip(h, [a, b, c, d, e])]
            for i in range(5):
                m.store_elem(state_arr, i)
        m.space.pop_frame()
        m.builder.meta["digest"] = "".join(f"{x:08x}" for x in h)
        m.builder.meta["nbytes"] = nbytes
