"""Figure 1 — non-uniform per-set accesses of MiBench FFT.

The paper plots accesses per cache set for the FFT L1D and reports in prose
that 90.43% of sets receive less than half the average number of accesses
while 6.641% receive more than twice the average.  We reproduce the per-set
histogram under the paper's geometry and report the same two bucket
percentages, plus the full uniformity metric suite for context.
"""

from __future__ import annotations

from ..core.uniformity import uniformity_report, zhang_classification
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult, sparkline
from .runner import register_experiment

__all__ = ["run_fig01"]


@register_experiment("fig1")
def run_fig01(config: PaperConfig) -> ExperimentResult:
    sims, stats = ExperimentEngine(config).run(
        [make_cell("baseline", "fft", "baseline", config)]
    )
    sim = sims[("fft", "baseline")]
    accesses = sim.slot_accesses
    rep = uniformity_report(accesses)
    zh = zhang_classification(accesses, sim.slot_hits, sim.slot_misses)

    result = ExperimentResult(
        experiment_id="fig1",
        title="Non-uniform cache accesses for MiBench FFT (accesses per set)",
        columns=["value"],
        unit="",
    )
    result.add_row("sets_below_half_avg_%", {"value": rep.below_half_pct})
    result.add_row("sets_above_double_avg_%", {"value": rep.above_double_pct})
    result.add_row("mean_accesses_per_set", {"value": rep.mean})
    result.add_row("std_accesses_per_set", {"value": rep.std})
    result.add_row("skewness", {"value": rep.skewness})
    result.add_row("kurtosis", {"value": rep.kurtosis})
    result.add_row("gini", {"value": rep.gini})
    result.add_row("FHS_%", {"value": zh["FHS%"]})
    result.add_row("FMS_%", {"value": zh["FMS%"]})
    result.add_row("LAS_%", {"value": zh["LAS%"]})
    result.arrays["accesses_per_set"] = accesses
    result.arrays["misses_per_set"] = sim.slot_misses
    result.note(
        "paper: 90.43% of sets < half average accesses, 6.641% > 2x average"
    )
    result.note("per-set access profile: " + sparkline(accesses))
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("fig1")
def fig01_traces(config: PaperConfig):
    return [workload_spec("fft", config)]
