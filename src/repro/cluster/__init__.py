"""Multi-node simulation cluster: consistent-hash routing over workers.

The single-process job server (:mod:`repro.service`) coalesces duplicate
work on content-addressed result-cache keys.  Because those keys fully
determine a cell's outcome, *placement* of a cell is free — any worker
computes the identical ``.npz`` payload.  This package scales the service
out by exploiting exactly that:

:mod:`repro.cluster.ring`
    A deterministic consistent-hash ring mapping result-cache keys onto
    worker nodes (virtual nodes for balance, minimal movement on
    membership change).

:mod:`repro.cluster.link`
    One multiplexed persistent connection per worker, speaking the
    service's JSON-lines protocol.

:mod:`repro.cluster.router`
    The router daemon (``repro route``): forwards ``cell``/``sweep``/
    ``experiment`` frames to the owning worker, splits multi-cell plans
    per owner, merges streamed progress, health-checks workers and fails
    routed keys over to the next ring node with exactly-once semantics
    preserved by the key-addressed shared store.
"""

from .link import WorkerDown, WorkerLink
from .ring import HashRing
from .router import ClusterRouter

__all__ = ["ClusterRouter", "HashRing", "WorkerDown", "WorkerLink"]
