"""Benches for the extension experiments (DESIGN.md §6)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_bounds(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-bounds", config))
    print()
    print(result)
    avg = result.rows["Average"]
    assert avg["Belady"] >= avg["FullAssoc"] - 1e-9
    assert avg["Belady"] >= max(avg["Adaptive"], avg["B_Cache"], avg["ColAssoc"]) - 1e-9


def test_ext_patel(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-patel", config))
    print()
    print(result)
    assert result.rows["Average"]["Patel_train"] >= result.rows["Average"]["XOR"] - 10.0


def test_ext_hybrid(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-hybrid", config))
    print()
    print(result)
    # fft is fixed by every hybrid (the aliasing-array pathology).
    assert min(result.rows["fft"].values()) > 50.0
