"""SPEC-like ``mcf`` — network-simplex pricing over an arc arena.

Mechanistic stand-in for 429.mcf, SPEC's most cache-hostile integer code:
a large arena of 64-byte arc records and 48-byte node records linked into a
spanning tree.  The dominant phase — ``primal_bea_mpp`` arc pricing —
streams the arc arena while dereferencing each arc's head/tail *node*
pointers (scattered), then tree traversals chase parent pointers upward.

The min-cost-flow result of a small instance is validated in tests against
a Bellman-Ford-based successive-shortest-paths reference.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["McfWorkload"]

_ARC = 64
_NODE = 48
_A_COST, _A_TAIL, _A_HEAD, _A_FLOW = 0, 8, 16, 24
_N_POT, _N_PARENT, _N_DEPTH = 0, 8, 16


@register_workload
class McfWorkload(Workload):
    name = "mcf"
    suite = "spec"
    description = "Network-simplex style arc pricing + tree pointer chasing"
    access_pattern = "arc-arena streaming with scattered node dereferences"

    def kernel(self, m: Recorder, scale: float) -> None:
        n_nodes = self.scaled(3000, scale, minimum=16)
        n_arcs = self.scaled(18_000, scale, minimum=32)
        passes = self.scaled(6, scale, minimum=1)
        node_arr = m.space.heap_array(_NODE, n_nodes, "nodes")
        arc_arr = m.space.heap_array(_ARC, n_arcs, "arcs")

        tails = m.rng.integers(0, n_nodes, size=n_arcs)
        heads = m.rng.integers(0, n_nodes, size=n_arcs)
        costs = m.rng.integers(1, 1000, size=n_arcs)
        potential = m.rng.integers(0, 1000, size=n_nodes).astype(int)
        # Random spanning-tree parents (node 0 is the root).
        parent = [0] * n_nodes
        for v in range(1, n_nodes):
            parent[v] = int(m.rng.integers(0, v))
        depth = [0] * n_nodes
        for v in range(1, n_nodes):
            depth[v] = depth[parent[v]] + 1

        if m.bulk:
            # The pricing sweep's addresses never change between passes:
            # per arc [cost, tail, head, tail-node pot, head-node pot] — a
            # five-column interleave over the arena, precomputed once.
            arc_idx = np.arange(n_arcs)
            arc_base = arc_arr.addrs(arc_idx)
            pricing_cols = tuple(
                (col, False)
                for col in (
                    arc_base + np.uint64(_A_COST),
                    arc_base + np.uint64(_A_TAIL),
                    arc_base + np.uint64(_A_HEAD),
                    node_arr.addrs(tails) + np.uint64(_N_POT),
                    node_arr.addrs(heads) + np.uint64(_N_POT),
                )
            )

        entering = 0
        for p in range(passes):
            # Arc pricing: stream arcs, dereference endpoint nodes.
            if m.bulk:
                m.interleaved_stream(*pricing_cols)
                # The scalar strict-< update keeps the *first* occurrence of
                # the global minimum, and only when it is negative — exactly
                # np.argmin gated on min() < 0.
                reduced_all = costs - potential[tails] + potential[heads]
                best_red = int(reduced_all.min())
                best_arc = int(reduced_all.argmin()) if best_red < 0 else -1
            else:
                best_red, best_arc = 0, -1
                for a in range(n_arcs):
                    m.load(arc_arr.field_addr(a, _A_COST))
                    m.load(arc_arr.field_addr(a, _A_TAIL))
                    m.load(arc_arr.field_addr(a, _A_HEAD))
                    t, h = int(tails[a]), int(heads[a])
                    m.load(node_arr.field_addr(t, _N_POT))
                    m.load(node_arr.field_addr(h, _N_POT))
                    reduced = int(costs[a]) - potential[t] + potential[h]
                    if reduced < best_red:
                        best_red, best_arc = reduced, a
            if best_arc < 0:
                break
            entering += 1
            # Pivot: walk both endpoints to their common ancestor.
            t, h = int(tails[best_arc]), int(heads[best_arc])
            u, v = t, h
            while u != v:
                if depth[u] >= depth[v]:
                    m.load(node_arr.field_addr(u, _N_PARENT))
                    m.load(node_arr.field_addr(u, _N_DEPTH))
                    u = parent[u]
                else:
                    m.load(node_arr.field_addr(v, _N_PARENT))
                    m.load(node_arr.field_addr(v, _N_DEPTH))
                    v = parent[v]
            # Update potentials along the entering arc's tail subtree
            # (approximated by the tail's ancestor path, store-heavy).
            w = t
            while w != 0:
                m.store(node_arr.field_addr(w, _N_POT))
                potential[w] -= best_red
                w = parent[w]
            m.store(arc_arr.field_addr(best_arc, _A_FLOW))
        m.builder.meta["pivots"] = entering
