"""Wire-protocol unit tests: framing, normalization, and serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.simulator import SimulationResult
from repro.experiments.config import PaperConfig
from repro.experiments.engine.cells import make_cell
from repro.service import protocol
from repro.service.protocol import (
    CONFIG_OVERRIDES,
    MAX_FRAME_BYTES,
    ProtocolError,
    config_from_overrides,
    decode_frame,
    encode_frame,
    error_frame,
    normalize_cell_request,
    normalize_experiment_request,
    normalize_sweep_request,
    parse_deadline,
    result_to_wire,
    sweep_cell,
)

CONFIG = PaperConfig()


class TestFraming:
    def test_round_trip(self):
        frame = {"type": "cell", "id": "r1", "workload": "fft", "n": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encoding_is_newline_terminated_and_deterministic(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b  # sort_keys: same dict -> same bytes
        assert a.endswith(b"\n") and a.count(b"\n") == 1

    @pytest.mark.parametrize(
        "line", [b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"str"\n']
    )
    def test_malformed_frames_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_error_frame_shape(self):
        frame = error_frame("r9", protocol.E_OVERLOADED, "queue full")
        assert frame == {
            "id": "r9",
            "ok": False,
            "type": "error",
            "error": {"code": "overloaded", "message": "queue full"},
        }


class TestConfigOverrides:
    def test_whitelisted_overrides_apply_with_coercion(self):
        config = config_from_overrides(
            {"ref_limit": "9000", "seed": 7, "workload_scale": "0.25"}, CONFIG
        )
        assert config.ref_limit == 9000
        assert config.seed == 7
        assert config.workload_scale == 0.25

    def test_none_and_empty_return_base(self):
        assert config_from_overrides(None, CONFIG) is CONFIG
        assert config_from_overrides({}, CONFIG) is CONFIG

    def test_unknown_key_rejected(self):
        # Operator-owned knobs must not be reachable over the wire.
        for key in ("trace_cache_dir", "result_cache_dir", "jobs", "nope"):
            with pytest.raises(ProtocolError, match="not allowed"):
                config_from_overrides({key: "x"}, CONFIG)

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            config_from_overrides([1, 2], CONFIG)

    def test_engine_values_validated(self):
        assert config_from_overrides({"engine": "sequential"}, CONFIG).engine
        with pytest.raises(ProtocolError, match="engine"):
            config_from_overrides({"engine": "gpu"}, CONFIG)

    def test_bad_coercion_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="ref_limit"):
            config_from_overrides({"ref_limit": "many"}, CONFIG)

    def test_cell_timeout_override(self):
        assert config_from_overrides({"cell_timeout": 2}, CONFIG).cell_timeout == 2.0
        assert (
            config_from_overrides({"cell_timeout": None}, CONFIG).cell_timeout is None
        )

    def test_every_override_is_a_real_config_field(self):
        fields = set(PaperConfig.__dataclass_fields__)
        assert set(CONFIG_OVERRIDES) <= fields


class TestNormalization:
    def test_cell_request_builds_the_engine_cell(self):
        req = {"type": "cell", "kind": "indexing", "workload": "fft", "label": "XOR"}
        cell, config = normalize_cell_request(req, CONFIG)
        assert cell == make_cell("indexing", "fft", "XOR", CONFIG)
        assert config is CONFIG

    def test_cell_request_overrides_feed_make_cell(self):
        req = {
            "type": "cell",
            "kind": "indexing",
            "workload": "fft",
            "label": "Odd_Multiplier",
            "config": {"odd_multiplier": 21},
        }
        cell, config = normalize_cell_request(req, CONFIG)
        assert ("odd_multiplier", 21) in cell.params
        assert config.odd_multiplier == 21

    @pytest.mark.parametrize(
        "req",
        [
            {"kind": "indexing", "workload": "fft"},  # missing label
            {"kind": "indexing", "workload": "nope", "label": "XOR"},
            {"kind": "nope", "workload": "fft", "label": "XOR"},
            {"kind": "setassoc", "workload": "fft", "label": "nope"},
            {"kind": "indexing", "workload": "", "label": "XOR"},
        ],
    )
    def test_bad_cell_requests_raise(self, req):
        with pytest.raises(ProtocolError):
            normalize_cell_request(req, CONFIG)

    def test_sweep_label_routing(self):
        assert sweep_cell("fft", "baseline", CONFIG).kind == "baseline"
        assert sweep_cell("fft", "4way", CONFIG).kind == "setassoc"
        assert sweep_cell("fft", "XOR", CONFIG).kind == "indexing"

    def test_sweep_request(self):
        req = {"workload": "crc", "schemes": ["baseline", "XOR", "4way"]}
        cells, _ = normalize_sweep_request(req, CONFIG)
        assert [c.kind for c in cells] == ["baseline", "indexing", "setassoc"]
        assert all(c.workload == "crc" for c in cells)

    @pytest.mark.parametrize(
        "schemes", [None, [], "XOR", ["XOR", ""], ["XOR", 3]]
    )
    def test_bad_sweep_schemes_raise(self, schemes):
        with pytest.raises(ProtocolError):
            normalize_sweep_request(
                {"workload": "fft", "schemes": schemes}, CONFIG
            )

    def test_experiment_request(self):
        eid, _ = normalize_experiment_request({"experiment": "fig1"}, CONFIG)
        assert eid == "fig1"
        with pytest.raises(ProtocolError, match="unknown experiment"):
            normalize_experiment_request({"experiment": "fig99"}, CONFIG)


class TestDeadline:
    def test_absent_uses_default(self):
        assert parse_deadline({}, 5.0) == 5.0
        assert parse_deadline({}, None) is None

    def test_request_value_wins(self):
        assert parse_deadline({"deadline": 2}, 5.0) == 2.0

    @pytest.mark.parametrize("value", [0, -1, "soon", []])
    def test_invalid_deadlines_raise(self, value):
        with pytest.raises(ProtocolError):
            parse_deadline({"deadline": value}, None)


def _result() -> SimulationResult:
    return SimulationResult(
        model="XOR",
        trace_name="fft",
        accesses=100,
        hits=80,
        misses=20,
        lookup_cycles=123,
        slot_accesses=np.array([50, 50], dtype=np.int64),
        slot_hits=np.array([40, 40], dtype=np.int64),
        slot_misses=np.array([10, 10], dtype=np.int64),
        extra={"swaps": np.int64(3)},
    )


class TestResultSerialization:
    def test_scalars_always_arrays_on_request(self):
        doc = result_to_wire(_result())
        assert doc["misses"] == 20 and doc["miss_rate"] == 0.2
        assert "slot_misses" not in doc
        doc = result_to_wire(_result(), include_arrays=True)
        assert doc["slot_misses"] == [10, 10]

    def test_wire_doc_is_json_safe_and_deterministic(self):
        # np ints must not leak: two serializations are byte-identical.
        a = json.dumps(result_to_wire(_result(), True), sort_keys=True)
        b = json.dumps(result_to_wire(_result(), True), sort_keys=True)
        assert a == b
        assert json.loads(a)["extra"] == {"swaps": 3}
