"""Generic selected-bits indexing.

Both the Givargis and Patel schemes reduce to "pick ``m`` address-bit
positions; the index is the concatenation of those bits".  This module holds
the shared machinery: a concrete scheme over fixed positions, plus helpers to
extract the bit matrix of a set of addresses (used by the trainers).
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry, gather_bits, gather_bits_vec
from .base import IndexingScheme, register_scheme

__all__ = ["BitSelectIndexing", "candidate_bit_positions", "bit_matrix"]


def candidate_bit_positions(geometry: CacheGeometry, include_offset_bits: bool = False) -> tuple[int, ...]:
    """Address-bit positions eligible for selection.

    The paper (Section IV.A) did *not* use byte-offset bits when training
    Givargis' method — and attributes Givargis' poor showing on 32-byte lines
    to exactly this exclusion.  ``include_offset_bits=True`` re-admits them,
    which the block-size ablation uses to reproduce that prose claim.
    """
    low = 0 if include_offset_bits else geometry.offset_bits
    return tuple(range(low, geometry.address_bits))


def bit_matrix(addresses: np.ndarray, positions: tuple[int, ...]) -> np.ndarray:
    """(len(addresses), len(positions)) uint8 matrix of the selected bits."""
    addresses = np.asarray(addresses, dtype=np.uint64)
    cols = [((addresses >> np.uint64(p)) & np.uint64(1)).astype(np.uint8) for p in positions]
    if not cols:
        return np.zeros((addresses.size, 0), dtype=np.uint8)
    return np.stack(cols, axis=1)


@register_scheme
class BitSelectIndexing(IndexingScheme):
    """Index = concatenation of the address bits at ``positions``.

    ``positions[0]`` supplies the least-significant index bit.  The number of
    positions must equal the geometry's index-bit count so every set is
    addressable.
    """

    name = "bit_select"

    def __init__(self, geometry: CacheGeometry, positions: tuple[int, ...] | list[int]):
        super().__init__(geometry)
        positions = tuple(int(p) for p in positions)
        if len(positions) != geometry.index_bits:
            raise ValueError(
                f"need exactly {geometry.index_bits} bit positions, got {len(positions)}"
            )
        if len(set(positions)) != len(positions):
            raise ValueError("bit positions must be distinct")
        for p in positions:
            if not 0 <= p < geometry.address_bits:
                raise ValueError(f"bit position {p} outside the {geometry.address_bits}-bit address")
        self.positions = positions

    def index_of(self, address: int) -> int:
        return gather_bits(address, self.positions)

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        return gather_bits_vec(np.asarray(addresses, dtype=np.uint64), self.positions).astype(np.int64)
