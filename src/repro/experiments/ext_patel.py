"""Extension experiment: Patel's application-specific index search.

The paper describes Patel et al.'s optimal reconfigurable indexing
(Section II.F) but excludes it from the evaluation "because of the
intractability of the computations".  Our bounded search (greedy forward
selection + budgeted local search over the exact conflict-cost objective,
see :mod:`repro.core.indexing.patel`) makes a scaled-down evaluation
possible: this experiment compares Patel-selected indexes against the
conventional, XOR and Givargis indexes on a reduced geometry where the
search is cheap, plus the paper geometry with a small budget.

Shape expectation: Patel ≥ Givargis ≥/≈ conventional on the training input
(it directly minimises the evaluated objective), with the usual
profile-transfer caveats on a different input.
"""

from __future__ import annotations

from ..core.indexing import GivargisIndexing, ModuloIndexing, PatelIndexing, XorIndexing
from ..core.simulator import simulate_indexing
from ..core.uniformity import percent_reduction
from .config import PaperConfig
from .report import ExperimentResult
from .runner import profile_trace, register_experiment, workload_trace

__all__ = ["run_ext_patel"]

#: A subset of benchmarks keeps the search affordable.
PATEL_BENCHES = ["fft", "crc", "patricia", "dijkstra"]


@register_experiment("ext-patel")
def run_ext_patel(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="ext-patel",
        title="% miss reduction vs conventional: Patel bounded search",
        columns=["XOR", "Givargis", "Patel_train", "Patel_transfer"],
    )
    for bench in PATEL_BENCHES:
        trace = workload_trace(bench, config)
        train = profile_trace(bench, config)
        base = simulate_indexing(ModuloIndexing(g), trace, g)
        row = {}
        row["XOR"] = percent_reduction(
            simulate_indexing(XorIndexing(g), trace, g).misses, base.misses
        )
        row["Givargis"] = percent_reduction(
            simulate_indexing(GivargisIndexing(g).fit(train.addresses), trace, g).misses,
            base.misses,
        )
        # Patel fitted on the evaluation trace itself (the upper bound the
        # original authors target)...
        patel_self = PatelIndexing(g, max_swap_moves=16).fit(trace.addresses)
        row["Patel_train"] = percent_reduction(
            simulate_indexing(patel_self, trace, g).misses, base.misses
        )
        # ...and fitted on the profiling input (deployment reality).
        patel_xfer = PatelIndexing(g, max_swap_moves=16).fit(train.addresses)
        row["Patel_transfer"] = percent_reduction(
            simulate_indexing(patel_xfer, trace, g).misses, base.misses
        )
        result.add_row(bench, row)
    result.add_average_row()
    result.note("Patel_train minimises the exact objective it is scored on")
    result.note("the paper skipped Patel as intractable; this is the bounded variant")
    return result


from .warm import profile_spec, provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-patel")
def ext_patel_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in PATEL_BENCHES] + [
        profile_spec(b, config) for b in PATEL_BENCHES
    ]
