"""Four-thread SMT and partitioned-cache tests (the paper's Figure 13/14
include 4-thread mixes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.amat import TimingModel
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing
from repro.core.selector import ThreadSchemeTable
from repro.multithread import (
    PartitionedAdaptiveCache,
    SMTSharedCache,
    StaticPartitionedCache,
    simulate_partitioned,
    simulate_smt,
)
from repro.trace import Trace, round_robin

G = PAPER_L1_GEOMETRY
MULTIPLIERS = (9, 31, 21, 61)  # the recommended set, one per thread


def four_conflicting_threads(n_per_thread=3000):
    """Four threads whose hot blocks all alias in the same sets."""
    traces = []
    for t in range(4):
        base = np.uint64(t * 32 * 1024)  # same index bits, distinct tags
        addrs = base + np.tile(np.arange(32, dtype=np.uint64) * 32, n_per_thread // 32)
        traces.append(Trace(addrs, name=f"t{t}"))
    return round_robin(traces)


class TestFourThreadSMT:
    def test_conventional_thrash(self):
        mix = four_conflicting_threads()
        res = simulate_smt(
            SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 4)), mix
        )
        assert res.miss_rate > 0.9

    def test_four_distinct_multipliers_help_substantially(self):
        """Each thread's 32-line hot range maps to a distinct (p_t·t)-offset
        window; the windows still partially overlap (their union is only
        128 of 1024 sets), so the fix is large but not total — unlike the
        2-thread case where the offsets fully separate."""
        mix = four_conflicting_threads()
        base = simulate_smt(
            SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 4)), mix
        )
        schemes = [OddMultiplierIndexing(G, m) for m in MULTIPLIERS]
        res = simulate_smt(
            SMTSharedCache(G, ThreadSchemeTable(schemes)), four_conflicting_threads()
        )
        assert res.misses < base.misses * 0.5

    def test_identical_multipliers_do_not(self):
        """The gain requires *different* multipliers — same hash for all
        threads leaves them colliding (shifted together)."""
        mix = four_conflicting_threads()
        schemes = [OddMultiplierIndexing(G, 9) for _ in range(4)]
        res = simulate_smt(SMTSharedCache(G, ThreadSchemeTable(schemes)), mix)
        distinct = simulate_smt(
            SMTSharedCache(
                G, ThreadSchemeTable([OddMultiplierIndexing(G, m) for m in MULTIPLIERS])
            ),
            four_conflicting_threads(),
        )
        assert distinct.misses < res.misses

    def test_per_thread_stats_cover_all_threads(self):
        mix = four_conflicting_threads()
        cache = SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 4))
        res = simulate_smt(cache, mix)
        assert (res.thread_hits + res.thread_misses > 0).all()


class TestFourThreadPartitioned:
    def test_quarter_partitions(self):
        cache = StaticPartitionedCache(G, 4)
        assert cache.part_sets == 256
        assert cache.primary_slot(0, 3) == 768

    def test_adaptive_spill_with_one_heavy_thread(self):
        """Three idle threads donate capacity to one heavy sweeper."""
        heavy = Trace(
            np.tile(np.arange(400, dtype=np.uint64) * 32, 10), name="heavy"
        )  # 12.5 KiB >> its 8 KiB quarter
        idles = [
            Trace(np.zeros(len(heavy), dtype=np.uint64) + np.uint64(i * 4096), name=f"idle{i}")
            for i in range(3)
        ]
        mix = round_robin([heavy] + idles)
        static = simulate_partitioned(StaticPartitionedCache(G, 4), mix)
        adaptive = simulate_partitioned(PartitionedAdaptiveCache(G, 4), mix)
        assert adaptive.misses < static.misses
        tm = TimingModel()
        assert adaptive.amat(tm, adaptive=True) < static.amat(tm)
