"""Givargis profile-driven index selection (paper Section II.A, DAC'03).

From the *unique* addresses of a profiling trace, two statistics are built
over candidate address bits:

* quality ``Q_i = min(Z_i, O_i) / max(Z_i, O_i)`` — how evenly bit *i* splits
  the unique addresses between 0 and 1 (Eq. 1).  1.0 is a perfect splitter.
* correlation ``C_ij = min(E_ij, D_ij) / max(E_ij, D_ij)`` — 1.0 when bits
  *i* and *j* agree and disagree equally often (independent), 0.0 when they
  are identical or complementary across all addresses (Eq. 2, where E/D count
  equal/different occurrences).

Selection is greedy: take the highest-quality bit, then damp every remaining
bit's quality by its correlation row with the pick (the "dot product" /
update step the paper describes), and repeat until ``m`` bits are chosen.
Highly correlated bits carry redundant information, so damping them steers
the index toward independent splitters.

Per the paper's Section IV.A, byte-offset bits are excluded from the
candidate pool by default; ``include_offset_bits=True`` restores them for the
block-size ablation.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry, gather_bits, gather_bits_vec
from .base import TrainableIndexingScheme, register_scheme
from .bit_select import bit_matrix, candidate_bit_positions

__all__ = ["GivargisIndexing", "bit_quality", "bit_correlation_matrix", "select_bits_greedy"]


def bit_quality(bits: np.ndarray) -> np.ndarray:
    """Quality vector (Eq. 1) from a (U, nbits) 0/1 matrix of unique addresses."""
    total = bits.shape[0]
    if total == 0:
        raise ValueError("cannot score bit quality with zero addresses")
    ones = bits.sum(axis=0, dtype=np.int64)
    zeros = total - ones
    lo = np.minimum(ones, zeros).astype(np.float64)
    hi = np.maximum(ones, zeros).astype(np.float64)
    # A constant bit has lo == 0 and quality 0; hi is never 0 for total > 0.
    return lo / hi


def bit_correlation_matrix(bits: np.ndarray) -> np.ndarray:
    """Correlation matrix (Eq. 2): 1 = independent, 0 = identical/complementary."""
    total, nbits = bits.shape
    if total == 0:
        raise ValueError("cannot correlate bits over zero addresses")
    x = bits.astype(np.float64)
    # E_ij = #(both 1) + #(both 0); D_ij = total - E_ij.
    n11 = x.T @ x
    ones = x.sum(axis=0)
    # #(i=1, j=0) = ones_i - n11; by symmetry for (0,1); both-zero fills the rest.
    equal = 2.0 * n11 - ones[:, None] - ones[None, :] + total
    diff = total - equal
    lo = np.minimum(equal, diff)
    hi = np.maximum(equal, diff)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(hi > 0, lo / hi, 0.0)
    np.fill_diagonal(corr, 0.0)  # a bit is fully correlated with itself
    return corr


def select_bits_greedy(
    quality: np.ndarray, correlation: np.ndarray, count: int
) -> list[int]:
    """Greedy quality-maximising, correlation-damping bit selection.

    Returns ``count`` column indices into the candidate pool, in selection
    order (first pick = least-significant index bit, matching Givargis'
    construction).
    """
    nbits = quality.shape[0]
    if count > nbits:
        raise ValueError(f"cannot select {count} bits from a pool of {nbits}")
    score = quality.astype(np.float64).copy()
    chosen: list[int] = []
    available = np.ones(nbits, dtype=bool)
    for _ in range(count):
        masked = np.where(available, score, -np.inf)
        pick = int(np.argmax(masked))
        if not np.isfinite(masked[pick]):
            # Degenerate pool (all remaining scores -inf); take any free bit.
            pick = int(np.flatnonzero(available)[0])
        chosen.append(pick)
        available[pick] = False
        # Damp remaining bits by their independence from the pick: bits that
        # duplicate the pick (C -> 0) are pushed to the back of the queue.
        score *= correlation[pick]
    return chosen


@register_scheme
class GivargisIndexing(TrainableIndexingScheme):
    """Index = concatenation of the m greedily selected high-quality bits."""

    name = "givargis"

    def __init__(self, geometry: CacheGeometry, include_offset_bits: bool = False):
        super().__init__(geometry)
        self.include_offset_bits = include_offset_bits
        self.positions: tuple[int, ...] = ()
        self.quality_: np.ndarray | None = None
        self.correlation_: np.ndarray | None = None
        self._candidates = candidate_bit_positions(geometry, include_offset_bits)

    def fit(self, addresses: np.ndarray) -> "GivargisIndexing":
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        if addresses.size == 0:
            raise ValueError("empty profiling trace")
        unique = np.unique(addresses)
        bits = bit_matrix(unique, self._candidates)
        self.quality_ = bit_quality(bits)
        self.correlation_ = bit_correlation_matrix(bits)
        cols = select_bits_greedy(self.quality_, self.correlation_, self.geometry.index_bits)
        self.positions = tuple(self._candidates[c] for c in cols)
        self._fitted = True
        return self

    def index_of(self, address: int) -> int:
        self._require_fitted()
        return gather_bits(address, self.positions)

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return gather_bits_vec(np.asarray(addresses, dtype=np.uint64), self.positions).astype(np.int64)
