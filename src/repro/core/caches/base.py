"""Cache-model protocol and statistics containers.

All models operate at *block granularity*: an access carries a byte address,
is reduced to a block address, and the block address itself is stored as the
line's identity (a superset of the hardware tag).  Storing the full block
address instead of a geometry-relative tag keeps every model correct under
arbitrary indexing functions — including per-thread functions that map the
same block to different sets — which a truncated tag would alias.

Statistics come in two layers:

* **global counters** (`hits`, `misses`, plus model-specific classes such as
  `rehash_hits` or `out_hits`) drive miss rates and the paper's AMAT
  formulas (8)/(9);
* **per-slot arrays** drive the uniformity analysis (paper Figures 1 and
  9-12).  A *slot* is a physical line for direct-mapped-style structures and
  a set for k-way structures; every probe of a slot increments its access
  count, a hit is attributed to the slot that hit, and a miss to the access's
  primary slot.  Consequently ``slot_hits.sum() + slot_misses.sum() ==
  total_accesses`` always holds, while ``slot_accesses.sum()`` may exceed it
  when a model probes alternate locations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..address import CacheGeometry

__all__ = ["AccessResult", "CacheStats", "CacheModel", "EMPTY"]

#: Sentinel block value for an empty line.
EMPTY: int = -1


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    #: Cycles spent in this level's lookup (1 = primary hit; alternates cost
    #: more; misses report the cycles burnt before going to the next level).
    cycles: int
    #: Slot where the lookup started (primary index).
    primary_slot: int
    #: Slot that serviced a hit, or where the block was allocated on a miss.
    serviced_slot: int
    #: Block evicted to make room, or None.
    evicted_block: int | None = None
    #: Model-specific hit class: "direct", "rehash", "out", "victim", ...
    hit_class: str = ""


@dataclass
class CacheStats:
    """Counters for one cache model instance."""

    num_slots: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: Extra hit/miss classes, e.g. {"rehash_hits": 10, "rehash_misses": 5}.
    extra: dict[str, int] = field(default_factory=dict)
    slot_accesses: np.ndarray = field(init=False)
    slot_hits: np.ndarray = field(init=False)
    slot_misses: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.slot_accesses = np.zeros(self.num_slots, dtype=np.int64)
        self.slot_hits = np.zeros(self.num_slots, dtype=np.int64)
        self.slot_misses = np.zeros(self.num_slots, dtype=np.int64)

    # -- recording ---------------------------------------------------------------

    def record_probe(self, slot: int) -> None:
        self.slot_accesses[slot] += 1

    def record_hit(self, slot: int, hit_class: str = "") -> None:
        self.hits += 1
        self.slot_hits[slot] += 1
        if hit_class:
            self.bump(hit_class + "_hits")

    def record_miss(self, primary_slot: int, miss_class: str = "") -> None:
        self.misses += 1
        self.slot_misses[primary_slot] += 1
        if miss_class:
            self.bump(miss_class + "_misses")

    def bump(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount

    # -- derived -----------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def fraction(self, key: str, denominator: str = "accesses") -> float:
        """extra[key] over a base counter; 0 when the base is 0."""
        base = getattr(self, denominator, None)
        if base is None:
            base = self.extra.get(denominator, 0)
        return self.extra.get(key, 0) / base if base else 0.0

    def check_invariants(self) -> None:
        """Raise AssertionError if the two stat layers disagree."""
        assert self.hits + self.misses == self.accesses, "hit + miss != accesses"
        assert int(self.slot_hits.sum()) == self.hits, "per-slot hits drifted"
        assert int(self.slot_misses.sum()) == self.misses, "per-slot misses drifted"
        assert int(self.slot_accesses.sum()) >= self.accesses, "probes under-counted"

    def summary(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
        }
        out.update(self.extra)
        return out


class CacheModel(ABC):
    """A single cache level driven one access at a time."""

    name: str = "abstract"

    def __init__(self, geometry: CacheGeometry, num_slots: int):
        self.geometry = geometry
        self.stats = CacheStats(num_slots)

    # -- main entry ---------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access one byte address; updates stats and contents."""
        block = address >> self.geometry.offset_bits
        self.stats.accesses += 1
        result = self._access_block(block, is_write)
        return result

    @abstractmethod
    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        """Model-specific lookup/fill at block granularity."""

    # -- management ---------------------------------------------------------------

    @abstractmethod
    def contents(self) -> set[int]:
        """The set of resident block addresses (for invariant checks)."""

    def reset_stats(self) -> None:
        self.stats = CacheStats(self.stats.num_slots)

    @abstractmethod
    def flush(self) -> None:
        """Invalidate all contents (stats preserved)."""

    def describe(self) -> str:
        return f"{self.name} ({self.geometry.describe()})"
