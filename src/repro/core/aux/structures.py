"""The auxiliary structures: victim cache, miss cache, stream buffers.

Each structure implements the small :class:`AuxStructure` protocol the
:class:`~repro.core.aux.augmented.AugmentedCache` wrapper drives on every
main-array miss.  The protocol is event-shaped rather than lookup-shaped
so that the sequential wrapper and the replay fast path
(:mod:`repro.core.aux.fast`) can issue *byte-identical call sequences* to
the very same objects — structural equivalence instead of a re-derived
state machine per engine.

Per main-array miss, in order:

1. ``probe(block, stats)`` — first structure to return True services the
   access (its ``hit_class``/``hit_cycles`` label the hit);
2. ``on_eviction(block, stats)`` — the block displaced from the main
   array is offered down the structure chain; a victim buffer absorbs it
   and returns its own overflow (or ``None``), everything else passes it
   through unchanged;
3. ``on_main_miss(block, stats)`` — every structure that did *not*
   service the access observes the main-array miss (stream buffers in
   ``allocate="always"`` mode allocate here);
4. ``on_full_miss(block, stats)`` — only when no structure serviced the
   access (miss cache allocation, stream buffers in the default
   ``allocate="miss"`` mode).

``stats`` is the wrapper's :class:`~repro.core.caches.base.CacheStats`;
structures use it only to ``bump`` their own extra counters (prefetch
issue counts and the like) — hit/miss accounting belongs to the wrapper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict, deque

from ..caches.base import CacheStats

__all__ = ["AuxStructure", "VictimBuffer", "MissCache", "StreamBuffer"]


class AuxStructure(ABC):
    """One auxiliary structure beside a main cache array."""

    #: Short identity used in combo specs and model names ("vc"/"mc"/"sb").
    name: str = "aux"
    #: Stats class of a hit serviced here (becomes ``extra["<class>_hits"]``).
    hit_class: str = "aux"
    #: Lookup cycles billed for a hit serviced here.
    hit_cycles: int = 2
    #: Whether contents must stay disjoint from the main array (victim
    #: buffer: yes, by the swap semantics; miss cache: no, duplication is
    #: its defining trait; stream buffers hold not-yet-delivered blocks).
    exclusive: bool = False

    @abstractmethod
    def probe(self, block: int, stats: CacheStats) -> bool:
        """Service a main-array miss for ``block`` if resident here."""

    def on_eviction(self, block: int, stats: CacheStats) -> int | None:
        """Offer a block displaced from the main array; return what still
        leaves the hierarchy (``None`` if absorbed without overflow)."""
        return block

    def on_main_miss(self, block: int, stats: CacheStats) -> None:
        """Observe a main-array miss this structure did not service."""

    def on_full_miss(self, block: int, stats: CacheStats) -> None:
        """Observe a miss no structure serviced (the block is fetched)."""

    @abstractmethod
    def contents(self) -> set[int]:
        """Resident block addresses (for invariant checks)."""

    @abstractmethod
    def flush(self) -> None:
        """Invalidate all contents."""

    def check_invariants(self) -> None:
        pass

    @property
    def label(self) -> str:
        """Combo-spec label, e.g. ``vc4`` (used in canonical model names)."""
        return f"{self.name}{self.lines}"


class VictimBuffer(AuxStructure):
    """Jouppi's victim cache: a small fully-associative buffer of lines
    evicted from the main array.

    A probe hit removes the line (the wrapper swaps it back into the main
    array and offers the displaced line to :meth:`on_eviction`); insertion
    order is eviction order, the oldest entry overflowing first.  Because
    a resident entry can only ever be *removed* by a hit — never touched
    in place — insertion-order replacement and LRU coincide here.
    """

    name = "vc"
    hit_class = "victim"
    hit_cycles = 2
    exclusive = True

    def __init__(self, lines: int):
        if lines < 1:
            raise ValueError("victim buffer needs at least one line")
        self.lines = lines
        self._entries: OrderedDict[int, None] = OrderedDict()

    def probe(self, block: int, stats: CacheStats) -> bool:
        if block in self._entries:
            del self._entries[block]
            return True
        return False

    def on_eviction(self, block: int, stats: CacheStats) -> int | None:
        overflow = None
        if len(self._entries) >= self.lines:
            overflow, _ = self._entries.popitem(last=False)
        self._entries[block] = None
        return overflow

    def contents(self) -> set[int]:
        return set(self._entries)

    def flush(self) -> None:
        self._entries.clear()

    def check_invariants(self) -> None:
        assert len(self._entries) <= self.lines


class MissCache(AuxStructure):
    """Jouppi's miss cache: a small fully-associative LRU buffer filled
    with the *missed* line itself (allocate-on-miss).

    A probe hit refreshes the entry's recency and leaves it resident (the
    wrapper copies the block into the main array, so the miss cache
    deliberately duplicates main-array contents — the space cost that
    makes the victim cache strictly better per Jouppi's comparison).
    """

    name = "mc"
    hit_class = "miss_cache"
    hit_cycles = 2
    exclusive = False

    def __init__(self, lines: int):
        if lines < 1:
            raise ValueError("miss cache needs at least one line")
        self.lines = lines
        self._entries: OrderedDict[int, None] = OrderedDict()

    def probe(self, block: int, stats: CacheStats) -> bool:
        if block in self._entries:
            self._entries.move_to_end(block)
            return True
        return False

    def on_full_miss(self, block: int, stats: CacheStats) -> None:
        if block in self._entries:
            self._entries.move_to_end(block)
            return
        if len(self._entries) >= self.lines:
            self._entries.popitem(last=False)
        self._entries[block] = None

    def contents(self) -> set[int]:
        return set(self._entries)

    def flush(self) -> None:
        self._entries.clear()

    def check_invariants(self) -> None:
        assert len(self._entries) <= self.lines


class StreamBuffer(AuxStructure):
    """Jouppi's stream buffers: ``streams`` FIFO queues of ``depth``
    sequentially prefetched blocks each.

    A queue only ever hits on its *head* entry (the classic design: the
    head comparator is the cheap one); a head hit delivers the block,
    advances the queue and prefetches the next sequential block at the
    tail, keeping the stream running.  Allocation replaces the
    least-recently-used queue with a fresh ``[b+1 .. b+depth]`` stream —
    on every unserviced main-array miss when ``allocate="always"``, or
    only on misses no structure serviced (the default, ``"miss"``, which
    avoids re-allocating streams for misses a victim/miss cache already
    absorbed).

    Counters bumped into the wrapper's stats: ``stream_prefetches`` (every
    block ever enqueued — the denominator of prefetch *accuracy*) and
    ``stream_allocs`` (queues started).
    """

    name = "sb"
    hit_class = "stream"
    hit_cycles = 1
    exclusive = False

    _ALLOCATE_MODES = ("miss", "always")

    def __init__(self, depth: int, streams: int = 4, allocate: str = "miss"):
        if depth < 1:
            raise ValueError("stream buffer needs a prefetch depth of at least 1")
        if streams < 1:
            raise ValueError("stream buffer needs at least one queue")
        if allocate not in self._ALLOCATE_MODES:
            raise ValueError(
                f"unknown allocate-on-miss policy {allocate!r}; "
                f"known: {self._ALLOCATE_MODES}"
            )
        self.lines = depth  # queue depth doubles as the structure's size knob
        self.depth = depth
        self.streams = streams
        self.allocate = allocate
        #: LRU order: index 0 is the replacement candidate, -1 the MRU.
        self._queues: list[deque[int]] = []

    def probe(self, block: int, stats: CacheStats) -> bool:
        for i, queue in enumerate(self._queues):
            if queue and queue[0] == block:
                queue.popleft()
                queue.append((queue[-1] + 1) if queue else block + 1)
                stats.bump("stream_prefetches")
                self._queues.append(self._queues.pop(i))  # MRU
                return True
        return False

    def _allocate(self, block: int, stats: CacheStats) -> None:
        if len(self._queues) >= self.streams:
            self._queues.pop(0)
        self._queues.append(deque(range(block + 1, block + 1 + self.depth)))
        stats.bump("stream_allocs")
        stats.bump("stream_prefetches", self.depth)

    def on_main_miss(self, block: int, stats: CacheStats) -> None:
        if self.allocate == "always":
            self._allocate(block, stats)

    def on_full_miss(self, block: int, stats: CacheStats) -> None:
        if self.allocate == "miss":
            self._allocate(block, stats)

    def contents(self) -> set[int]:
        return {b for q in self._queues for b in q}

    def flush(self) -> None:
        self._queues.clear()

    def check_invariants(self) -> None:
        assert len(self._queues) <= self.streams
        assert all(len(q) <= self.depth for q in self._queues)

    @property
    def label(self) -> str:
        return f"sb{self.depth}"
