"""Multithreaded trace interleaving — the M-Sim stand-in.

The paper's Section IV.E experiments run 2-4 threads on an SMT core sharing
the L1.  At the cache's vantage point an SMT core is an *interleaving* of the
threads' reference streams; these functions build that interleaving from
per-thread traces, tagging each reference with its thread id so the shared
cache can apply per-thread indexing functions (paper Figure 13) or
partitions (Figure 14).

Three disciplines are provided:

* ``round_robin`` — one reference per thread per turn (ideal fine-grain SMT);
* ``random_interleave`` — Bernoulli choice per slot, weighted by the threads'
  remaining lengths (models issue jitter);
* ``block_interleave`` — quantum-sized bursts (coarse-grain multithreading /
  context switching).

All preserve per-thread program order — the only property the cache-level
results depend on — and consume threads fully: the interleaved length is the
sum of the input lengths.
"""

from __future__ import annotations

import numpy as np

from .event import Trace

__all__ = ["round_robin", "random_interleave", "block_interleave", "retag_threads"]


def _tagged(traces: list[Trace] | tuple[Trace, ...]) -> list[Trace]:
    if not traces:
        raise ValueError("need at least one trace")
    return list(traces)


def retag_threads(traces: list[Trace]) -> list[np.ndarray]:
    """Thread-id arrays: trace *i* becomes thread *i* regardless of old tags."""
    return [np.full(len(t), i, dtype=np.int16) for i, t in enumerate(traces)]


def _assemble(traces: list[Trace], order_thread: np.ndarray, order_pos: np.ndarray, name: str) -> Trace:
    addresses = np.empty(order_thread.size, dtype=np.uint64)
    is_write = np.empty(order_thread.size, dtype=bool)
    for i, t in enumerate(traces):
        mask = order_thread == i
        addresses[mask] = t.addresses[order_pos[mask]]
        is_write[mask] = t.is_write[order_pos[mask]]
    return Trace(addresses, is_write, order_thread.astype(np.int16), name=name)


def round_robin(traces: list[Trace], name: str = "") -> Trace:
    """Cycle through live threads, one reference each."""
    traces = _tagged(traces)
    lengths = [len(t) for t in traces]
    total = sum(lengths)
    order_thread = np.empty(total, dtype=np.int64)
    order_pos = np.empty(total, dtype=np.int64)
    cursors = [0] * len(traces)
    k = 0
    while k < total:
        for i, t in enumerate(traces):
            if cursors[i] < lengths[i]:
                order_thread[k] = i
                order_pos[k] = cursors[i]
                cursors[i] += 1
                k += 1
    return _assemble(traces, order_thread, order_pos, name or "+".join(t.name for t in traces))


def random_interleave(traces: list[Trace], seed: int = 0, name: str = "") -> Trace:
    """Random merge preserving per-thread order (weighted by length)."""
    traces = _tagged(traces)
    rng = np.random.default_rng(seed)
    # Draw a global order by assigning each reference a uniform key and
    # sorting — within a thread keys are assigned in increasing position, so
    # sort stability preserves program order per thread.
    lengths = np.array([len(t) for t in traces])
    total = int(lengths.sum())
    thread_of = np.repeat(np.arange(len(traces)), lengths)
    pos_of = np.concatenate([np.arange(n) for n in lengths]) if total else np.empty(0, dtype=np.int64)
    keys = rng.random(total)
    # Sort keys *within each thread* so position order is preserved, then
    # merge by key.
    for i in range(len(traces)):
        mask = thread_of == i
        keys[mask] = np.sort(keys[mask])
    order = np.argsort(keys, kind="stable")
    return _assemble(
        traces, thread_of[order], pos_of[order], name or "+".join(t.name for t in traces)
    )


def block_interleave(traces: list[Trace], quantum: int = 64, name: str = "") -> Trace:
    """Quantum-sized bursts per thread, round-robin over live threads."""
    traces = _tagged(traces)
    if quantum < 1:
        raise ValueError("quantum must be >= 1")
    lengths = [len(t) for t in traces]
    total = sum(lengths)
    order_thread = np.empty(total, dtype=np.int64)
    order_pos = np.empty(total, dtype=np.int64)
    cursors = [0] * len(traces)
    k = 0
    while k < total:
        progressed = False
        for i in range(len(traces)):
            take = min(quantum, lengths[i] - cursors[i])
            if take > 0:
                order_thread[k : k + take] = i
                order_pos[k : k + take] = np.arange(cursors[i], cursors[i] + take)
                cursors[i] += take
                k += take
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return _assemble(traces, order_thread, order_pos, name or "+".join(t.name for t in traces))
