"""Skewed-associative cache tests (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import (
    DirectMappedCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
)
from repro.core.simulator import simulate
from repro.trace import Trace, ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestConstruction:
    def test_bank_shape(self):
        c = SkewedAssociativeCache(G, ways=2)
        assert c.bank_geometry.num_sets == 512
        assert c.stats.num_slots == G.num_lines

    def test_rejects_single_bank(self):
        with pytest.raises(ValueError):
            SkewedAssociativeCache(G, ways=1)

    def test_rejects_multiway_geometry(self):
        with pytest.raises(ValueError):
            SkewedAssociativeCache(CacheGeometry(32 * 1024, 32, 2))

    def test_scheme_count_must_match(self):
        from repro.core.indexing import ModuloIndexing

        g_bank = CacheGeometry(16 * 1024, 32, 1)
        with pytest.raises(ValueError):
            SkewedAssociativeCache(G, ways=2, schemes=[ModuloIndexing(g_bank)])


class TestBehaviour:
    def test_fixes_ping_pong(self, ping_pong):
        dm = simulate(DirectMappedCache(G), ping_pong)
        sk = simulate(SkewedAssociativeCache(G), ping_pong)
        assert dm.miss_rate == 1.0
        assert sk.miss_rate < 0.01

    def test_beats_two_way_on_stride_conflicts(self):
        """Many blocks aliasing one conventional set: a 2-way set-assoc
        cache holds two, the skewed cache spreads them across bank 1."""
        blocks = np.arange(8, dtype=np.uint64) * np.uint64(32 * 1024)
        t = Trace(np.tile(blocks, 60), name="stride8")
        sa2 = simulate(SetAssociativeCache(G.with_ways(2)), t)
        sk = simulate(SkewedAssociativeCache(G, ways=2), t)
        assert sa2.miss_rate > 0.9
        assert sk.miss_rate < sa2.miss_rate * 0.5

    def test_competitive_with_two_way_generally(self, zipf):
        sa2 = simulate(SetAssociativeCache(G.with_ways(2)), zipf)
        sk = simulate(SkewedAssociativeCache(G, ways=2), zipf)
        assert sk.misses <= sa2.misses * 1.15

    def test_no_duplicates_under_stress(self):
        rng = np.random.default_rng(4)
        c = SkewedAssociativeCache(G, ways=2)
        for a in rng.integers(0, 1 << 22, size=5000, dtype=np.uint64):
            c.access(int(a))
        c.check_invariants()

    def test_four_banks(self, zipf):
        c = SkewedAssociativeCache(G, ways=4)
        res = simulate(c, zipf)
        assert res.accesses == len(zipf)
        c.check_invariants()

    def test_flush(self):
        c = SkewedAssociativeCache(G)
        c.access(0x1000)
        c.flush()
        assert c.contents() == set()
