"""Differential tests: the k-way LRU stack-distance kernel ≡ the sequential engine.

Extends the PR-1 equivalence contract (``test_fastsim_differential.py``) to
the set-associative fast path.  Three layers are pinned:

* :func:`repro.core.fastsim.lru_miss_flags` against an *independent*
  OrderedDict-based k-way LRU model (not the package's own engine, so a
  shared bug cannot hide) — including non-power-of-two set counts and odd
  associativities, which only the kernel's generic index handling covers;
* :func:`repro.core.simulator.simulate_set_associative` /
  :func:`~repro.core.simulator.simulate_fully_associative` against the
  sequential engine driving :class:`~repro.core.caches.SetAssociativeCache`
  (LRU) and :class:`~repro.core.caches.FullyAssociativeCache` — hits,
  misses, per-set histograms, lookup cycles and the ``extra`` hit classes,
  for ways ∈ {1, 2, 4, 8}, every registered indexing scheme, randomized and
  adversarial traces;
* the consumers that dispatch between engines — the 3C classifier and the
  SMT / partitioned multithread simulators — with ``engine="auto"`` against
  ``engine="sequential"``.

Any new fast path added to the package must ship with an equivalence test
of this form (see DESIGN.md, "Differential-testing contract").
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import (
    DirectMappedCache,
    FullyAssociativeCache,
    SetAssociativeCache,
    VictimCache,
)
from repro.core.fastsim import (
    direct_mapped_miss_flags,
    lru_miss_count,
    lru_miss_flags,
    lru_stack_distances,
)
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.selector import ThreadSchemeTable
from repro.core.simulator import (
    simulate,
    simulate_fully_associative,
    simulate_set_associative,
)
from repro.core.three_c import classify
from repro.multithread import (
    SMTSharedCache,
    StaticPartitionedCache,
    simulate_partitioned,
    simulate_smt,
)
from repro.trace import Trace

TINY = CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)
SMALL = CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1)
PAPER = PAPER_L1_GEOMETRY

WAYS = [1, 2, 4, 8]


def kway_geometry(base: CacheGeometry, ways: int) -> CacheGeometry:
    """Same capacity/line/address space, ``ways``-way associative."""
    return CacheGeometry(base.capacity_bytes, base.line_bytes, ways, base.address_bits)


# -- independent reference model --------------------------------------------------


def reference_lru_miss_flags(
    blocks: np.ndarray, indices: np.ndarray, ways: int
) -> np.ndarray:
    """OrderedDict-per-set k-way LRU, written independently of fastsim."""
    sets: dict[int, OrderedDict[int, None]] = {}
    flags = np.empty(len(blocks), dtype=bool)
    for i, (b, s) in enumerate(zip(blocks.tolist(), indices.tolist())):
        lines = sets.setdefault(s, OrderedDict())
        if b in lines:
            flags[i] = False
            lines.move_to_end(b)
        else:
            flags[i] = True
            lines[b] = None
            if len(lines) > ways:
                lines.popitem(last=False)
    return flags


# -- trace zoo --------------------------------------------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << geometry.address_bits, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def all_one_set_trace(geometry: CacheGeometry, n: int = 512) -> Trace:
    """Every access a fresh block of the same modulo set (stresses one stack)."""
    stride = np.uint64(geometry.num_sets * geometry.line_bytes)
    base = np.uint64(3 * geometry.line_bytes)
    idx = np.arange(n, dtype=np.uint64)
    addrs = (base + idx * stride) % np.uint64(1 << geometry.address_bits)
    return Trace(addrs, name="one_set")


def cyclic_set_trace(geometry: CacheGeometry, period: int, n: int = 900) -> Trace:
    """A, B, ..., A, B, ... cycling ``period`` conflicting blocks of one set —
    the LRU worst case: misses every access once ``period > ways``."""
    stride = np.uint64(geometry.num_sets * geometry.line_bytes)
    base = np.uint64(5 * geometry.line_bytes)
    idx = (np.arange(n) % period).astype(np.uint64)
    addrs = (base + idx * stride) % np.uint64(1 << geometry.address_bits)
    return Trace(addrs, name=f"cycle{period}")


def empty_trace() -> Trace:
    return Trace(np.empty(0, dtype=np.uint64), name="empty")


def single_access_trace(geometry: CacheGeometry) -> Trace:
    return Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        all_one_set_trace(geometry),
        cyclic_set_trace(geometry, 3),
        cyclic_set_trace(geometry, 9),
        empty_trace(),
        single_access_trace(geometry),
    ]


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    """One instance of every registered scheme, trainables fitted.

    Degenerate geometries (e.g. an 8-way TINY cache collapses to a single
    set) cannot host every scheme — prime-modulo needs ≥ 2 sets — so
    constructors that reject the geometry are skipped rather than faked.
    """
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    factories = [
        lambda: ModuloIndexing(geometry),
        lambda: XorIndexing(geometry),
        lambda: OddMultiplierIndexing(geometry, 9),
        lambda: PrimeModuloIndexing(geometry),
        lambda: BitSelectIndexing(geometry, bit_positions),
        lambda: GivargisIndexing(geometry).fit(fit_addrs),
        lambda: GivargisXorIndexing(geometry).fit(fit_addrs),
        lambda: PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]
    schemes = []
    for make in factories:
        try:
            schemes.append(make())
        except ValueError:
            pass
    return schemes


# -- kernel vs the independent reference ------------------------------------------


class TestKernelVsReference:
    @pytest.mark.parametrize("ways", WAYS + [3, 7])
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_all_schemes_all_traces(self, geometry, ways):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
                indices = scheme.indices_of(trace.addresses)
                flags = lru_miss_flags(blocks, indices, ways)
                ref = reference_lru_miss_flags(blocks, indices, ways)
                np.testing.assert_array_equal(
                    flags, ref, err_msg=f"{scheme.name}/{trace.name}/{ways}way"
                )
                assert lru_miss_count(blocks, indices, ways) == int(ref.sum())

    @pytest.mark.parametrize("num_sets", [1, 3, 5, 12, 37])
    @pytest.mark.parametrize("ways", [1, 2, 3, 4, 8])
    def test_non_power_of_two_set_counts(self, num_sets, ways):
        """The kernel takes arbitrary index ranges (prime-modulo schemes)."""
        rng = np.random.default_rng(num_sets * 101 + ways)
        for trial in range(4):
            n = int(rng.integers(1, 1500))
            blocks = rng.integers(0, 64, size=n).astype(np.int64)
            indices = rng.integers(0, num_sets, size=n).astype(np.int64)
            np.testing.assert_array_equal(
                lru_miss_flags(blocks, indices, ways),
                reference_lru_miss_flags(blocks, indices, ways),
                err_msg=f"sets={num_sets} ways={ways} trial={trial}",
            )

    def test_ways_one_is_exactly_direct_mapped(self):
        trace = random_trace(SMALL, n=3000, seed=3)
        blocks = trace.blocks(SMALL.offset_bits).astype(np.int64)
        indices = ModuloIndexing(SMALL).indices_of(trace.addresses)
        np.testing.assert_array_equal(
            lru_miss_flags(blocks, indices, 1),
            direct_mapped_miss_flags(blocks, indices),
        )

    def test_stack_distances_are_mattson_consistent(self):
        """distance < k ⇔ hit at associativity k: one pass, every k."""
        trace = random_trace(SMALL, n=2500, seed=11)
        blocks = trace.blocks(SMALL.offset_bits).astype(np.int64)
        indices = ModuloIndexing(SMALL).indices_of(trace.addresses)
        dist = lru_stack_distances(blocks, indices)
        for ways in (1, 2, 3, 4, 8, 16):
            miss = (dist < 0) | (dist >= ways)
            np.testing.assert_array_equal(
                miss, reference_lru_miss_flags(blocks, indices, ways)
            )

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            lru_miss_flags(np.array([1]), np.array([0]), 0)


# -- vectorised engine vs the package's sequential engine -------------------------


def assert_results_identical(fast, slow, ctx: str) -> None:
    assert fast.accesses == slow.accesses, ctx
    assert fast.hits == slow.hits, ctx
    assert fast.misses == slow.misses, ctx
    assert fast.lookup_cycles == slow.lookup_cycles, ctx
    assert fast.extra == slow.extra, ctx
    np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_hits, slow.slot_hits, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses, err_msg=ctx)


class TestSetAssociativeVsSequentialEngine:
    @pytest.mark.parametrize("ways", WAYS)
    @pytest.mark.parametrize("base", [TINY, SMALL], ids=["tiny", "small"])
    def test_all_schemes_all_traces(self, base, ways):
        g = kway_geometry(base, ways)
        fit = random_trace(g, n=2000, seed=99)
        for scheme in scheme_lineup(g, fit):
            for trace in trace_zoo(g):
                fast = simulate_set_associative(scheme, trace, g)
                slow = simulate(SetAssociativeCache(g, scheme, policy="lru"), trace)
                assert_results_identical(
                    fast, slow, f"{scheme.name}/{trace.name}/{ways}way"
                )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_seeds_paper_capacity(self, seed):
        g = kway_geometry(PAPER, 4)
        trace = random_trace(g, n=6000, seed=seed)
        for scheme in (ModuloIndexing(g), XorIndexing(g), PrimeModuloIndexing(g)):
            fast = simulate_set_associative(scheme, trace, g)
            slow = simulate(SetAssociativeCache(g, scheme, policy="lru"), trace)
            assert_results_identical(fast, slow, f"seed={seed}/{scheme.name}")

    def test_warmup_equivalence(self):
        g = kway_geometry(SMALL, 2)
        trace = random_trace(g, n=2000, seed=17)
        fast = simulate_set_associative(ModuloIndexing(g), trace, g, warmup=300)
        slow = simulate(SetAssociativeCache(g, policy="lru"), trace, warmup=300)
        assert (fast.accesses, fast.misses) == (slow.accesses, slow.misses)
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)

    def test_explicit_ways_override(self):
        """``ways`` overrides the geometry (the engine's bounds cells do this)."""
        trace = random_trace(SMALL, n=2000, seed=21)
        g2 = kway_geometry(SMALL, 2)
        overridden = simulate_set_associative(ModuloIndexing(g2), trace, g2, ways=2)
        slow = simulate(SetAssociativeCache(g2, policy="lru"), trace)
        assert overridden.misses == slow.misses

    def test_non_lru_policy_routes_to_policy_kernels(self):
        # Non-LRU policies no longer raise: they route through the
        # fastpolicy dispatcher and must agree with the sequential engine
        # (the full contract lives in test_fastpolicy_differential.py).
        trace = random_trace(SMALL, n=2000, seed=13)
        fast = simulate_set_associative(
            ModuloIndexing(SMALL), trace, SMALL, policy="fifo"
        )
        slow = simulate(SetAssociativeCache(SMALL, policy="fifo"), trace)
        assert (fast.accesses, fast.hits, fast.misses) == (
            slow.accesses,
            slow.hits,
            slow.misses,
        )
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            simulate_set_associative(
                ModuloIndexing(SMALL), random_trace(SMALL, n=10), SMALL, policy="belady"
            )

    def test_ways_one_matches_direct_mapped_cache(self):
        trace = random_trace(SMALL, n=2500, seed=31)
        fast = simulate_set_associative(ModuloIndexing(SMALL), trace, SMALL)
        slow = simulate(DirectMappedCache(SMALL), trace)
        assert (fast.hits, fast.misses) == (slow.hits, slow.misses)
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)


class TestFullyAssociativeVsSequentialEngine:
    @pytest.mark.parametrize("base", [TINY, SMALL], ids=["tiny", "small"])
    def test_traces_agree(self, base):
        fa_geometry = CacheGeometry(
            base.capacity_bytes, base.line_bytes, 1, base.address_bits
        )
        for trace in trace_zoo(base):
            fast = simulate_fully_associative(trace, fa_geometry)
            slow = simulate(FullyAssociativeCache(fa_geometry), trace)
            ctx = f"fa/{trace.name}"
            assert fast.accesses == slow.accesses, ctx
            assert fast.hits == slow.hits, ctx
            assert fast.misses == slow.misses, ctx
            assert fast.lookup_cycles == slow.lookup_cycles, ctx

    def test_explicit_line_count(self):
        trace = random_trace(SMALL, n=1500, seed=41)
        by_lines = simulate_fully_associative(trace, SMALL, lines=SMALL.num_lines)
        by_geometry = simulate_fully_associative(trace, SMALL)
        assert by_lines.misses == by_geometry.misses


# -- engine-dispatching consumers: auto ≡ sequential ------------------------------


class TestClassifierEngines:
    def test_direct_mapped_auto_equals_sequential(self):
        trace = random_trace(SMALL, n=3000, seed=51)
        for scheme in (ModuloIndexing(SMALL), XorIndexing(SMALL)):
            auto = classify(DirectMappedCache(SMALL, scheme), trace)
            seq = classify(DirectMappedCache(SMALL, scheme), trace, engine="sequential")
            assert auto.as_dict() == seq.as_dict(), scheme.name

    @pytest.mark.parametrize("ways", [2, 4])
    def test_set_associative_auto_equals_sequential(self, ways):
        g = kway_geometry(SMALL, ways)
        trace = random_trace(g, n=3000, seed=53)
        auto = classify(SetAssociativeCache(g, policy="lru"), trace)
        seq = classify(SetAssociativeCache(g, policy="lru"), trace, engine="sequential")
        assert auto.as_dict() == seq.as_dict()

    def test_stateful_model_falls_back_to_sequential(self):
        """A victim cache has no fast path; both engines must still agree."""
        trace = random_trace(SMALL, n=1500, seed=57)
        auto = classify(VictimCache(SMALL, victim_lines=4), trace)
        seq = classify(
            VictimCache(SMALL, victim_lines=4), trace, engine="sequential"
        )
        assert auto.as_dict() == seq.as_dict()

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            classify(
                DirectMappedCache(SMALL), random_trace(SMALL, n=10), engine="turbo"
            )


def multithread_trace(geometry: CacheGeometry, n_threads: int, n: int, seed: int) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 16, size=n, dtype=np.uint64)
    threads = rng.integers(0, n_threads, size=n).astype(np.int16)
    return Trace(addrs, thread=threads, name="mt")


class TestMultithreadEngines:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_smt_auto_equals_sequential(self, seed):
        g = SMALL
        trace = multithread_trace(g, 4, 4000, seed)
        schemes = [
            ModuloIndexing(g),
            OddMultiplierIndexing(g, 9),
            XorIndexing(g),
            OddMultiplierIndexing(g, 31),
        ]
        fast_cache = SMTSharedCache(g, ThreadSchemeTable(schemes))
        slow_cache = SMTSharedCache(g, ThreadSchemeTable(schemes))
        fast = simulate_smt(fast_cache, trace)
        slow = simulate_smt(slow_cache, trace, engine="sequential")
        assert fast.accesses == slow.accesses
        assert fast.misses == slow.misses
        assert fast.cross_evictions == slow.cross_evictions
        np.testing.assert_array_equal(fast.thread_hits, slow.thread_hits)
        np.testing.assert_array_equal(fast.thread_misses, slow.thread_misses)
        np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses)
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)
        # The fast path must also leave the cache object in the same state.
        np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks)
        np.testing.assert_array_equal(fast_cache._owner, slow_cache._owner)
        assert fast_cache.stats.extra == slow_cache.stats.extra

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_partitioned_auto_equals_sequential(self, seed):
        g = SMALL
        trace = multithread_trace(g, 2, 4000, seed)
        fast_cache = StaticPartitionedCache(g, 2)
        slow_cache = StaticPartitionedCache(g, 2)
        fast = simulate_partitioned(fast_cache, trace)
        slow = simulate_partitioned(slow_cache, trace, engine="sequential")
        assert (fast.accesses, fast.hits, fast.misses) == (
            slow.accesses,
            slow.hits,
            slow.misses,
        )
        assert fast.direct_hits == slow.direct_hits
        assert fast.lookup_cycles == slow.lookup_cycles
        np.testing.assert_array_equal(fast.thread_misses, slow.thread_misses)
        np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks)
        assert fast_cache.stats.extra == slow_cache.stats.extra

    def test_empty_multithread_trace(self):
        g = SMALL
        empty = Trace(np.empty(0, dtype=np.uint64), name="empty")
        res = simulate_smt(SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)])), empty)
        assert res.accesses == 0 and res.cross_evictions == 0
        part = simulate_partitioned(StaticPartitionedCache(g, 1), empty)
        assert part.accesses == 0 and part.lookup_cycles == 0

    def test_rejects_unknown_engine(self):
        g = SMALL
        trace = multithread_trace(g, 1, 10, 0)
        with pytest.raises(ValueError):
            simulate_smt(
                SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)])),
                trace,
                engine="turbo",
            )
        with pytest.raises(ValueError):
            simulate_partitioned(StaticPartitionedCache(g, 1), trace, engine="turbo")
