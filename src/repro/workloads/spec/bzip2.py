"""SPEC-like ``bzip2`` — Burrows-Wheeler block sorting.

The compression-dominant phase of 401.bzip2: radix bucketing of suffix
pointers by leading byte pair (counting sort over a 64 K-entry bucket
array) followed by comparison sorting within buckets that chases suffix
pointers into the text at data-dependent offsets.  The BWT output column is
checked against a reference construction in the tests.
"""

from __future__ import annotations

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["Bzip2Workload", "bwt_last_column"]


def bwt_last_column(data: bytes) -> bytes:
    """Reference BWT last column (rotations, no sentinel) for verification."""
    n = len(data)
    doubled = data + data
    order = sorted(range(n), key=lambda i: doubled[i : i + n])
    return bytes(data[(i - 1) % n] for i in order)


@register_workload
class Bzip2Workload(Workload):
    name = "bzip2"
    suite = "spec"
    description = "BWT block sort: radix bucketing + in-bucket suffix sorting"
    access_pattern = "large bucket-count array + data-dependent text probes"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(12_000, scale, minimum=32)
        text_arr = m.space.heap_array(1, n, "block")
        ptr_arr = m.space.heap_array(4, n, "suffix_ptrs")
        bucket_arr = m.space.heap_array(4, 65536, "bucket_counts")
        # Compressible text: random walk over a small alphabet with runs.
        vals = []
        cur = 97
        for _ in range(n):
            if m.rng.random() < 0.3:
                cur = int(m.rng.integers(97, 107))
            vals.append(cur)
        data = bytes(vals)
        doubled = data + data

        # Pass 1: count byte-pair buckets.
        for i in range(n):
            m.load_elem(text_arr, i)
            pair = doubled[i] << 8 | doubled[i + 1]
            m.load_elem(bucket_arr, pair)
            m.store_elem(bucket_arr, pair)
        # Pass 2: scatter pointers into buckets.
        buckets: dict[int, list[int]] = {}
        for i in range(n):
            m.load_elem(text_arr, i)
            pair = doubled[i] << 8 | doubled[i + 1]
            m.load_elem(bucket_arr, pair)
            m.store_elem(ptr_arr, i)
            buckets.setdefault(pair, []).append(i)
        # Pass 3: sort within buckets, probing the text per comparison.
        order: list[int] = []
        import functools

        for pair in sorted(buckets):
            group = buckets[pair]

            def cmp(a: int, b: int) -> int:
                # Compare rotations byte-wise; emit the probe loads.
                for k in range(2, n):
                    m.load(text_arr.addr((a + k) % n))
                    m.load(text_arr.addr((b + k) % n))
                    ca, cb = doubled[a + k], doubled[b + k]
                    if ca != cb:
                        return -1 if ca < cb else 1
                return 0

            group.sort(key=functools.cmp_to_key(cmp))
            for p in group:
                m.store_elem(ptr_arr, len(order) % n)
                order.append(p)
        last = bytes(data[(i - 1) % n] for i in order)
        m.builder.meta["bwt_head"] = last[:16].hex()
        m.builder.meta["n"] = n
