"""Write-back modelling tests for the hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import ColumnAssociativeCache, DirectMappedCache
from repro.core.hierarchy import CacheHierarchy
from repro.trace import Trace

G = PAPER_L1_GEOMETRY


def make_trace(addrs, writes):
    return Trace(
        np.array(addrs, dtype=np.uint64),
        is_write=np.array(writes, dtype=bool),
        name="wb",
    )


class TestWriteback:
    def test_read_only_trace_has_no_writebacks(self):
        t = make_trace([0, 32 * 1024, 0, 32 * 1024], [False] * 4)
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        # Write block 0, then evict it with an aliasing block.
        t = make_trace([0, 32 * 1024], [True, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writebacks == 1

    def test_clean_eviction_is_silent(self):
        t = make_trace([0, 32 * 1024], [False, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writebacks == 0

    def test_writeback_clears_dirty_bit(self):
        # Dirty block evicted (1 writeback), refetched clean, evicted again:
        # still only 1 writeback.
        a, b = 0, 32 * 1024
        t = make_trace([a, b, a, b], [True, False, False, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writebacks == 1

    def test_rewritten_block_writes_back_again(self):
        a, b = 0, 32 * 1024
        t = make_trace([a, b, a, b], [True, False, True, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writebacks == 2

    def test_l2_traffic_includes_writebacks(self):
        a, b = 0, 32 * 1024
        t = make_trace([a, b], [True, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        # L2 sees: miss-fill a, writeback a, miss-fill b.
        assert res.l2.accesses == res.l1.misses + res.writebacks

    def test_writeback_rate(self):
        t = make_trace([0, 32 * 1024], [True, False])
        res = CacheHierarchy(DirectMappedCache(G)).run(t)
        assert res.writeback_rate == pytest.approx(0.5)

    def test_column_associative_relocations_not_written_back(self):
        """A dirty block *relocated* inside the column-associative L1 (not
        evicted) must not generate a writeback."""
        a, b = 0, 32 * 1024
        # a dirtied, then b conflicts: a moves to the alternate set, stays
        # resident and dirty; no writeback yet.
        t = make_trace([a, b, a], [True, False, False])
        res = CacheHierarchy(ColumnAssociativeCache(G)).run(t)
        assert res.writebacks == 0
        assert res.l1.misses == 2  # cold a, cold b; the third access rehash-hits

    def test_write_heavy_workload_traffic(self):
        from repro.workloads import get_workload

        trace = get_workload("susan").generate(seed=1, ref_limit=20_000)
        res = CacheHierarchy(DirectMappedCache(G)).run(trace)
        assert 0 <= res.writebacks <= res.l1.misses + 1
