"""Deeper algorithmic verification of the workload kernels.

Beyond the known-answer tests in test_mibench/test_spec, these tests verify
*behavioural* properties: the ADPCM codec round-trips real signals within
quantisation error, the PATRICIA trie survives randomised insert/search
storms (hypothesis), and the kernel-internal encoders agree with their
trace-free reference twins.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.recorder import Recorder
from repro.workloads.mibench.adpcm import decode_samples, encode_samples
from repro.workloads.mibench.patricia import PatriciaTrie


class TestAdpcmRoundTrip:
    def test_sine_round_trip_snr(self):
        """Decoding the encoded signal must track it closely (IMA ADPCM is
        4:1 lossy; 10 dB SNR on a smooth signal is a loose floor)."""
        n = 4000
        signal = [int(8000 * math.sin(0.05 * i)) for i in range(n)]
        decoded = decode_samples(encode_samples(signal))
        sig = np.array(signal[200:], dtype=np.float64)  # skip adaptation ramp
        err = sig - np.array(decoded[200:], dtype=np.float64)
        snr_db = 10 * np.log10((sig**2).mean() / max((err**2).mean(), 1e-9))
        assert snr_db > 10.0

    def test_silence_encodes_to_silence(self):
        deltas = encode_samples([0] * 100)
        decoded = decode_samples(deltas)
        assert max(abs(d) for d in decoded) < 64  # dithers within min step

    def test_step_response_converges(self):
        """A DC step: the decoder output must converge to the step level."""
        signal = [10000] * 400
        decoded = decode_samples(encode_samples(signal))
        assert abs(decoded[-1] - 10000) < 600

    def test_kernel_state_matches_reference(self):
        """The traced kernel's final coder state equals the reference
        encoder's on the same input."""
        from repro.workloads import get_workload

        t = get_workload("adpcm").generate(seed=3, ref_limit=None, scale=0.01)
        n = max(64, round(40_000 * 0.01))
        rng = np.random.default_rng(3)
        samples = [
            int(8000 * math.sin(0.03 * i) * math.sin(0.0011 * i) + rng.normal(0, 300))
            for i in range(n)
        ]
        ref = encode_samples(samples)
        # Recompute the reference final state.
        valprev, index = 0, 0
        from repro.workloads.mibench.adpcm import INDEX_ADJUST, STEP_SIZES

        for s, d in zip(samples, ref):
            step = STEP_SIZES[index]
            sign = d & 8
            vpdiff = step >> 3
            if d & 4:
                vpdiff += step
            if d & 2:
                vpdiff += step >> 1
            if d & 1:
                vpdiff += step >> 2
            valprev = valprev - vpdiff if sign else valprev + vpdiff
            valprev = max(-32768, min(32767, valprev))
            index = max(0, min(len(STEP_SIZES) - 1, index + INDEX_ADJUST[d]))
        assert t.meta["final_index"] == index
        assert t.meta["final_valprev"] == valprev


class TestPatriciaStress:
    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(min_value=1, max_value=(1 << 32) - 1), min_size=1, max_size=120))
    def test_insert_search_storm(self, keys):
        trie = PatriciaTrie(Recorder("pat"))
        for k in keys:
            trie.insert(k)
        for k in keys:
            assert trie.search(k)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sets(st.integers(min_value=1, max_value=(1 << 16) - 1), min_size=1, max_size=60),
        st.sets(st.integers(min_value=1 << 20, max_value=1 << 24), min_size=1, max_size=60),
    )
    def test_disjoint_keyspaces(self, present, absent):
        """Keys from a disjoint range must never be found."""
        trie = PatriciaTrie(Recorder("pat"))
        for k in present:
            trie.insert(k)
        for k in absent:
            assert not trie.search(k)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=255), min_size=2, max_size=40))
    def test_duplicate_inserts_idempotent(self, keys):
        trie = PatriciaTrie(Recorder("pat"))
        results = [trie.insert(k) for k in keys]
        for k in keys:
            assert not trie.insert(k)  # re-insert always a no-op
            assert trie.search(k)
        # Insert returned True exactly once per distinct key.
        assert sum(results) == len(set(keys))
