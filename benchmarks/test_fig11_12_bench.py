"""Figures 11/12 bench: programmable associativity uniformity of misses."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment
from repro.workloads.mibench import MIBENCH_ORDER


def test_fig11_progassoc_kurtosis(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig11", config))
    print()
    print(result)
    # Shape: the adaptive cache drives kurtosis down for most benchmarks.
    adaptives = [result.rows[b]["Adaptive_Cache"] for b in MIBENCH_ORDER]
    assert sum(1 for v in adaptives if v <= 0) > len(adaptives) / 2


def test_fig12_progassoc_skewness(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig12", config))
    print()
    print(result)
    adaptives = [result.rows[b]["Adaptive_Cache"] for b in MIBENCH_ORDER]
    assert sum(1 for v in adaptives if v <= 0) > len(adaptives) / 2
